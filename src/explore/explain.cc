#include "explore/explain.h"

#include <algorithm>
#include <unordered_set>

#include "core/report.h"
#include "eventstore/cursor.h"
#include "support/strings.h"

namespace diog::explore {

namespace {

using ffm::Finding;
using ffm::Group;
using ffm::Node;

// Per-member facts read back from the event store: how the member
// operations asked for their work vs. what the driver actually did.
// These bits decide between patterns the graph alone cannot separate
// (an explicit cudaDeviceSynchronize vs. an async copy that was
// silently serialized).
struct OpFlagFacts {
  std::size_t async_requested = 0;  // members that asked for async
  std::size_t hidden_syncs = 0;     // async requested AND sync performed
  std::size_t pageable_endpoint = 0;  // transfer touching pageable host mem
  std::size_t duplicate_ops = 0;      // members flagged as duplicate content
};

OpFlagFacts op_flag_facts(const ffm::AnalysisResult& r, const Finding& f) {
  namespace ev = evstore;
  OpFlagFacts facts;
  std::unordered_set<std::uint64_t> members;
  const std::vector<std::vector<std::size_t>> single{f.group->nodes};
  const auto& instance_sets =
      f.group->instances.empty() ? single : f.group->instances;
  const std::vector<Node>& nodes = r.graph.nodes();
  for (const auto& set : instance_sets) {
    for (const std::size_t i : set) {
      if (i < nodes.size() && nodes[i].op_index >= 0) {
        members.insert(static_cast<std::uint64_t>(nodes[i].op_index));
      }
    }
  }
  if (members.empty() || !r.run.store) return facts;
  const ev::EventStore& store = *r.run.store;
  ev::Cursor c = ev::ops(store);
  ev::Event e;
  while (c.next(e)) {
    if (!members.contains(e.op_index)) continue;
    if (e.has(ev::flag::kAsyncRequested)) {
      ++facts.async_requested;
      if (e.has(ev::flag::kPerformedSync)) ++facts.hidden_syncs;
    }
    if (e.has(ev::flag::kPerformedTransfer) &&
        (e.src_mem() == hooks::MemKind::kPageable ||
         e.dst_mem() == hooks::MemKind::kPageable)) {
      ++facts.pageable_endpoint;
    }
  }
  ev::Cursor d = ev::duplicate_transfers(store);
  while (d.next(e)) {
    if (members.contains(e.op_index)) ++facts.duplicate_ops;
  }
  return facts;
}

std::string api_label(const Finding& f) {
  return f.dominant_api == hooks::Fn::kCount_
             ? std::string("the grouped operations")
             : std::string(hooks::fn_name(f.dominant_api));
}

std::string pct(double fraction) { return format_percent(fraction); }

// What the group *is*, as the narrative's opening clause.
std::string group_phrase(const Finding& f) {
  const Group& g = *f.group;
  if (f.source == Finding::Source::kSequence) {
    std::string s = "a contiguous sequence of " +
                    std::to_string(g.nodes.size()) +
                    " problematic operation(s)";
    if (g.instance_count() > 1) {
      s += " repeated " + std::to_string(g.instance_count()) +
           " times (one loop iteration each)";
    }
    return s;
  }
  std::string s = std::to_string(f.members) + " call(s) of " +
                  api_label(f) + " folded onto " +
                  std::to_string(std::max<std::size_t>(
                      g.expansion.size(), 1)) +
                  " source-level function(s)";
  return s;
}

}  // namespace

json::Value Explanation::to_json() const {
  json::Object o;
  o["pattern"] = pattern;
  o["headline"] = headline;
  o["narrative"] = narrative;
  o["evidence"] = evidence;
  return json::Value(std::move(o));
}

Explanation explain_finding(const ffm::AnalysisResult& r, const Finding& f) {
  const Group& g = *f.group;
  const OpFlagFacts flags = op_flag_facts(r, f);
  const double recoverable = f.recoverable_fraction();
  const double share =
      r.benefit.total.count() > 0
          ? static_cast<double>(g.benefit.count()) /
                static_cast<double>(r.benefit.total.count())
          : 0.0;
  const std::size_t sync_members = f.unnecessary_syncs + f.misplaced_syncs;
  const bool transfers_dominate = f.unnecessary_transfers > sync_members;
  const bool misplaced_dominate = f.misplaced_syncs > f.unnecessary_syncs &&
                                  f.misplaced_syncs >= f.unnecessary_transfers;

  Explanation ex;

  // --- Rule match, most specific first ------------------------------------
  if (transfers_dominate && flags.duplicate_ops > 0) {
    ex.pattern = "duplicate-transfer";
    ex.headline = std::to_string(flags.duplicate_ops) +
                  " transfer(s) move bytes already resident on the device";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". Content hashing (stage 3) found " +
        std::to_string(flags.duplicate_ops) +
        " of the transfers re-send data whose digest already crossed the "
        "bus, so the copies are pure overhead; dropping them recovers "
        "their full launch time of " + format_seconds(g.benefit) + ".";
  } else if (transfers_dominate) {
    ex.pattern = "unnecessary-transfer";
    ex.headline = "transfers whose payload the device never needed again";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". The flagged copies move data no subsequent GPU operation "
        "reads, so each one's CPU launch cost (" +
        format_seconds(g.benefit) + " in total) vanishes when removed.";
  } else if (misplaced_dominate && flags.hidden_syncs > 0) {
    ex.pattern = "async-copy-hidden-sync";
    ex.headline = std::to_string(flags.hidden_syncs) +
                  " async call(s) silently serialized" +
                  (flags.pageable_endpoint > 0 ? " by pageable host memory"
                                               : "");
    ex.narrative =
        "This is " + group_phrase(f) + ". " +
        std::to_string(flags.hidden_syncs) +
        " member(s) requested asynchronous execution but the driver "
        "performed a blocking synchronization anyway" +
        (flags.pageable_endpoint > 0
             ? " — the transfer endpoint is pageable host memory, which "
               "forces the copy onto the synchronous path (the classic "
               "async-copy-into-pageable bug; pin the buffer with "
               "cudaMallocHost to restore overlap)"
             : "") +
        ". First use of the synchronized data comes " +
        format_seconds(f.max_first_use_gap) +
        " after the wait ends, so deferring the sync to the use site "
        "recovers " + format_seconds(g.benefit) + " (" + pct(recoverable) +
        " of the members' " + format_seconds(f.member_time) +
        " wait time).";
  } else if (misplaced_dominate) {
    ex.pattern = "early-sync-before-first-use";
    ex.headline = "sync completes " + format_seconds(f.max_first_use_gap) +
                  " before its data is first used";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". The synchronization is required — the CPU does read the "
        "result — but it happens too early: the first dependent access "
        "is " + format_seconds(f.max_first_use_gap) +
        " after the wait completes (stage-4 first-use measurement). "
        "Moving the sync adjacent to the first use recovers " +
        format_seconds(g.benefit) + " (" + pct(recoverable) +
        " of the members' wait time), bounded by the gap itself.";
  } else if (f.source == Finding::Source::kSequence &&
             g.instance_count() >= 4) {
    ex.pattern = "sync-in-hot-loop";
    ex.headline = "per-iteration synchronization in a " +
                  std::to_string(g.instance_count()) + "-iteration loop";
    ex.narrative =
        "This is " + group_phrase(f) +
        ": the identical problematic run re-appears every iteration, so "
        "one source change multiplies by " +
        std::to_string(g.instance_count()) +
        ". Unrealized savings carry forward through each run (removing "
        "one wait lets the next grow), which is why the sequence "
        "estimate of " + format_seconds(g.benefit) +
        " is computed over the whole stretch rather than summed "
        "per-site.";
  } else if (f.source == Finding::Source::kFold &&
             (g.expansion.size() > 1 ||
              std::any_of(g.expansion.begin(), g.expansion.end(),
                          [](const Group::FoldEntry& e) {
                            return e.conditionally_unnecessary;
                          }))) {
    ex.pattern = "template-folded-sync";
    ex.headline = std::to_string(f.members) + " sites collapse to " +
                  std::to_string(g.expansion.size()) +
                  " template function(s); one fix covers all";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". The distinct call stacks differ only in template "
        "instantiation, so they share one source location; fixing it "
        "addresses all " + std::to_string(f.members) +
        " member(s) at once for " + format_seconds(g.benefit) + "." +
        (std::any_of(g.expansion.begin(), g.expansion.end(),
                     [](const Group::FoldEntry& e) {
                       return e.conditionally_unnecessary;
                     })
             ? " Some members are implicit synchronizations that are "
               "only conditionally removable — verify the marked "
               "conditions before applying the fix."
             : "");
  } else if (recoverable >= 0.75) {
    ex.pattern = "redundant-device-sync";
    ex.headline = pct(recoverable) +
                  " of the wait time is recoverable: no dependent access "
                  "follows";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". Memory tracking (stage 3) observed no CPU access to "
        "device-written data behind these synchronizations, so they "
        "guard nothing; removing them recovers " +
        format_seconds(g.benefit) + " of their " +
        format_seconds(f.member_time) + " wait time (" +
        pct(recoverable) + ").";
  } else {
    ex.pattern = "limited-benefit-sync";
    ex.headline = "only " + pct(recoverable) +
                  " recoverable: the next sync absorbs the rest";
    ex.narrative =
        "This is " + group_phrase(f) +
        ". The synchronizations are unnecessary, but removing a wait "
        "only helps while the CPU has work to keep the device busy; "
        "here little CPU work sits before the next synchronization, "
        "which simply grows to absorb the freed time (the paper's "
        "limited-benefit case). Estimated recovery is " +
        format_seconds(g.benefit) + " of " +
        format_seconds(f.member_time) + " (" + pct(recoverable) + ").";
  }

  // Which lens captured the problem, and how much of the run it is.
  ex.narrative += " This " +
                  std::string(f.source == Finding::Source::kFold
                                  ? "fold"
                                  : "sequence") +
                  " accounts for " + pct(share) +
                  " of the run's total estimated benefit.";

  json::Object ev;
  ev["members"] = f.members;
  ev["unnecessary_syncs"] = f.unnecessary_syncs;
  ev["misplaced_syncs"] = f.misplaced_syncs;
  ev["unnecessary_transfers"] = f.unnecessary_transfers;
  ev["member_time_ns"] = f.member_time.count();
  ev["benefit_ns"] = g.benefit.count();
  ev["recoverable_fraction"] = recoverable;
  ev["share_of_total_benefit"] = share;
  ev["max_first_use_gap_ns"] = f.max_first_use_gap.count();
  ev["instances"] = static_cast<std::uint64_t>(g.instance_count());
  ev["async_requested"] = flags.async_requested;
  ev["hidden_syncs"] = flags.hidden_syncs;
  ev["pageable_endpoints"] = flags.pageable_endpoint;
  ev["duplicate_transfers"] = flags.duplicate_ops;
  ex.evidence = std::move(ev);
  return ex;
}

std::vector<Explanation> explain_all(const ffm::AnalysisResult& r,
                                     const std::vector<Finding>& fs) {
  std::vector<Explanation> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.push_back(explain_finding(r, f));
  return out;
}

std::string render_explained_overview(const ffm::AnalysisResult& r,
                                      std::size_t max_entries) {
  const std::vector<Finding> findings = ffm::collect_findings(r);
  std::string out;
  out += "Diogenes Overview Display (" + r.workload_name + ")\n";
  out += "Time(s) (% of execution time)\n";
  std::size_t shown = 0;
  for (const Finding& f : findings) {
    if (shown++ == max_entries) break;
    out += pad_left(format_seconds(f.group->benefit) + " (" +
                        format_percent(
                            r.fraction_of_exec(f.group->benefit)) +
                        ")",
                    22) +
           "  " + f.group->title + "\n";
    const Explanation ex = explain_finding(r, f);
    out += std::string(24, ' ') + "why: [" + ex.pattern + "] " +
           ex.headline + "\n";
  }
  out += "  Back/Previous\n  Exit\n";
  return out;
}

}  // namespace diog::explore
