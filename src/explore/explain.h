// Rule-based explanation engine: stage-5 findings -> causal narratives.
//
// The benefit report says *how much* time a fix recovers; it does not
// say *why* the number is what it is, and the why is what decides
// whether a developer acts. Each finding is pattern-matched against a
// small taxonomy of known CUDA synchronization bugs (the shapes
// catalogued by "Characterizing and Detecting CUDA Program Bugs" plus
// the paper's own Figure-4 limited-benefit case), and the matching rule
// assembles a narrative from the finding's member facts: which grouping
// dominated, how far the first use sits from the sync end, what
// fraction of the members' wait time is recoverable and what bounds the
// rest. Deterministic: the same analysis produces byte-identical
// explanations at any thread count.
#pragma once

#include <string>
#include <vector>

#include "core/findings.h"
#include "json/json.h"

namespace diog::explore {

struct Explanation {
  // Taxonomy id the finding matched, e.g. "redundant-device-sync".
  std::string pattern;
  // One-line causal summary for the overview listing.
  std::string headline;
  // The full narrative (2-4 sentences) for the report and the panel.
  std::string narrative;
  // The numbers the narrative is built from, for machine consumers.
  json::Object evidence;

  [[nodiscard]] json::Value to_json() const;
};

// Explains one finding of `r`. Never fails: a finding matching no
// specific rule falls back to the generic benefit narrative.
Explanation explain_finding(const ffm::AnalysisResult& r,
                            const ffm::Finding& f);

// All findings explained, in finding (benefit) order.
std::vector<Explanation> explain_all(const ffm::AnalysisResult& r,
                                     const std::vector<ffm::Finding>& fs);

// The overview display with a "why:" line under every entry — what the
// CLI's `overview` and `trace analyze` commands print. Entry lines and
// ordering are identical to ffm::render_overview.
std::string render_explained_overview(const ffm::AnalysisResult& r,
                                      std::size_t max_entries = 8);

}  // namespace diog::explore
