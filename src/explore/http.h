// A dependency-free embedded HTTP/1.1 server, just big enough for the
// trace explorer: GET requests, query strings, one response per
// connection (Connection: close), loopback only.
//
// The server owns only the socket plumbing. Everything interesting —
// routing, JSON assembly, caching — lives in the Service layer, whose
// handler this server invokes; tests exercise the handler directly
// without sockets, and the socket path is covered by the CI smoke job.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace diog::explore {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // decoded, no query string
  std::map<std::string, std::string, std::less<>> query;

  // Query accessors with defaults (missing or malformed -> fallback).
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view fallback = "") const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key,
                                     std::int64_t fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// "%41" -> "A", "+" -> " ". Invalid escapes pass through literally.
std::string url_decode(std::string_view s);

// Splits "GET /api/timeline?t0=1&t1=2 HTTP/1.1" into method, decoded
// path, and decoded query map. Returns false on a malformed line.
bool parse_request_line(std::string_view line, HttpRequest& out);

// The reason phrase for the handful of statuses the explorer emits.
std::string_view status_text(int status);

// Full response bytes (status line + headers + body).
std::string serialize_response(const HttpResponse& r);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:port (0 picks an ephemeral port) and starts
  // listening. Throws diog::Error on failure.
  void bind(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Accept loop on the calling thread; one request per connection,
  // handled serially. Returns after stop().
  void serve();

  // Thread-safe: wakes the accept loop and makes serve() return.
  void stop();

 private:
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
};

}  // namespace diog::explore
