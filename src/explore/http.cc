#include "explore/http.h"

#include <cstdlib>
#include <cstring>

#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIOG_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DIOG_HAVE_SOCKETS 0
#endif

namespace diog::explore {

namespace {

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               hex_val(s[i + 1]) >= 0 && hex_val(s[i + 2]) >= 0) {
      out += static_cast<char>(hex_val(s[i + 1]) * 16 + hex_val(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

bool parse_request_line(std::string_view line, HttpRequest& out) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  out.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t q = target.find('?');
  out.path = url_decode(target.substr(0, q));
  out.query.clear();
  if (q != std::string_view::npos) {
    std::string_view qs = target.substr(q + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        if (eq == std::string_view::npos) {
          out.query[url_decode(pair)] = "";
        } else {
          out.query[url_decode(pair.substr(0, eq))] =
              url_decode(pair.substr(eq + 1));
        }
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }
  return true;
}

std::string HttpRequest::get(std::string_view key,
                             std::string_view fallback) const {
  const auto it = query.find(key);
  return it != query.end() ? it->second : std::string(fallback);
}

std::int64_t HttpRequest::get_i64(std::string_view key,
                                  std::int64_t fallback) const {
  const auto it = query.find(key);
  if (it == query.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 422: return "Unprocessable Entity";
    default: return status >= 500 ? "Internal Server Error" : "Error";
  }
}

std::string serialize_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    std::string(status_text(r.status)) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Cache-Control: no-store\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

#if DIOG_HAVE_SOCKETS

void HttpServer::bind(std::uint16_t port) {
  DIOG_CHECK(listen_fd_ < 0, "http: already bound");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DIOG_CHECK(fd >= 0, "http: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw Error("http: cannot listen on 127.0.0.1:" + std::to_string(port) +
                ": " + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
}

void HttpServer::serve() {
  DIOG_CHECK(listen_fd_ >= 0, "http: serve() before bind()");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the header block (no request bodies: the
  // explorer is GET-only), with a hard cap so a hostile peer cannot
  // balloon memory.
  std::string buf;
  char chunk[4096];
  while (buf.find("\r\n\r\n") == std::string::npos &&
         buf.size() < 64 * 1024) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  HttpResponse resp;
  HttpRequest req;
  const std::size_t eol = buf.find("\r\n");
  if (eol == std::string::npos ||
      !parse_request_line(std::string_view(buf).substr(0, eol), req)) {
    resp.status = 400;
    resp.body = "{\"error\":\"malformed request\"}";
  } else if (req.method != "GET" && req.method != "HEAD") {
    resp.status = 405;
    resp.body = "{\"error\":\"method not allowed\"}";
  } else {
    resp = handler_(req);
    if (req.method == "HEAD") resp.body.clear();
  }
  const std::string out = serialize_response(resp);
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes a blocked accept(); close() releases the port.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

#else  // !DIOG_HAVE_SOCKETS

void HttpServer::bind(std::uint16_t) {
  throw Error("http: sockets unsupported on this platform");
}
void HttpServer::serve() {}
void HttpServer::handle_connection(int) {}
void HttpServer::stop() { stopping_.store(true); }

#endif

}  // namespace diog::explore
