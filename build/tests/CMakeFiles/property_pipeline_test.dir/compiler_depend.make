# Empty compiler generated dependencies file for property_pipeline_test.
# This may be replaced when dependencies are built.
