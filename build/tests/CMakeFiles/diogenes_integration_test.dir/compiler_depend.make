# Empty compiler generated dependencies file for diogenes_integration_test.
# This may be replaced when dependencies are built.
