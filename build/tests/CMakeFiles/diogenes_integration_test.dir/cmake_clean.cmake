file(REMOVE_RECURSE
  "CMakeFiles/diogenes_integration_test.dir/diogenes_integration_test.cc.o"
  "CMakeFiles/diogenes_integration_test.dir/diogenes_integration_test.cc.o.d"
  "diogenes_integration_test"
  "diogenes_integration_test.pdb"
  "diogenes_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diogenes_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
