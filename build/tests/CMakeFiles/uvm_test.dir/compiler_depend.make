# Empty compiler generated dependencies file for uvm_test.
# This may be replaced when dependencies are built.
