file(REMOVE_RECURSE
  "CMakeFiles/property_gpusim_test.dir/property_gpusim_test.cc.o"
  "CMakeFiles/property_gpusim_test.dir/property_gpusim_test.cc.o.d"
  "property_gpusim_test"
  "property_gpusim_test.pdb"
  "property_gpusim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_gpusim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
