file(REMOVE_RECURSE
  "CMakeFiles/memsync_engine_test.dir/memsync_engine_test.cc.o"
  "CMakeFiles/memsync_engine_test.dir/memsync_engine_test.cc.o.d"
  "memsync_engine_test"
  "memsync_engine_test.pdb"
  "memsync_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsync_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
