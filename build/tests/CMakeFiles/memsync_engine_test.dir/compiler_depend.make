# Empty compiler generated dependencies file for memsync_engine_test.
# This may be replaced when dependencies are built.
