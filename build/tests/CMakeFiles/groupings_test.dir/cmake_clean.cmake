file(REMOVE_RECURSE
  "CMakeFiles/groupings_test.dir/groupings_test.cc.o"
  "CMakeFiles/groupings_test.dir/groupings_test.cc.o.d"
  "groupings_test"
  "groupings_test.pdb"
  "groupings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
