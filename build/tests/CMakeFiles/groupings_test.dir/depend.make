# Empty dependencies file for groupings_test.
# This may be replaced when dependencies are built.
