# Empty dependencies file for chrome_trace_test.
# This may be replaced when dependencies are built.
