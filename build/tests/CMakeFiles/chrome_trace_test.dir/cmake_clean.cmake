file(REMOVE_RECURSE
  "CMakeFiles/chrome_trace_test.dir/chrome_trace_test.cc.o"
  "CMakeFiles/chrome_trace_test.dir/chrome_trace_test.cc.o.d"
  "chrome_trace_test"
  "chrome_trace_test.pdb"
  "chrome_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrome_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
