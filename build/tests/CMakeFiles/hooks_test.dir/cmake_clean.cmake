file(REMOVE_RECURSE
  "CMakeFiles/hooks_test.dir/hooks_test.cc.o"
  "CMakeFiles/hooks_test.dir/hooks_test.cc.o.d"
  "hooks_test"
  "hooks_test.pdb"
  "hooks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hooks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
