# Empty compiler generated dependencies file for cupti_gaps_test.
# This may be replaced when dependencies are built.
