file(REMOVE_RECURSE
  "CMakeFiles/cupti_gaps_test.dir/cupti_gaps_test.cc.o"
  "CMakeFiles/cupti_gaps_test.dir/cupti_gaps_test.cc.o.d"
  "cupti_gaps_test"
  "cupti_gaps_test.pdb"
  "cupti_gaps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupti_gaps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
