file(REMOVE_RECURSE
  "CMakeFiles/benefit_test.dir/benefit_test.cc.o"
  "CMakeFiles/benefit_test.dir/benefit_test.cc.o.d"
  "benefit_test"
  "benefit_test.pdb"
  "benefit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benefit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
