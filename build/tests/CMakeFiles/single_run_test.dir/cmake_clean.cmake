file(REMOVE_RECURSE
  "CMakeFiles/single_run_test.dir/single_run_test.cc.o"
  "CMakeFiles/single_run_test.dir/single_run_test.cc.o.d"
  "single_run_test"
  "single_run_test.pdb"
  "single_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
