# Empty dependencies file for single_run_test.
# This may be replaced when dependencies are built.
