file(REMOVE_RECURSE
  "CMakeFiles/gpusim_ext_test.dir/gpusim_ext_test.cc.o"
  "CMakeFiles/gpusim_ext_test.dir/gpusim_ext_test.cc.o.d"
  "gpusim_ext_test"
  "gpusim_ext_test.pdb"
  "gpusim_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
