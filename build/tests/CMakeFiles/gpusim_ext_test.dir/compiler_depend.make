# Empty compiler generated dependencies file for gpusim_ext_test.
# This may be replaced when dependencies are built.
