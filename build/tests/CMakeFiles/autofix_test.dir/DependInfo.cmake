
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autofix_test.cc" "tests/CMakeFiles/autofix_test.dir/autofix_test.cc.o" "gcc" "tests/CMakeFiles/autofix_test.dir/autofix_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/diog_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/diog_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cuptilike/CMakeFiles/diog_cuptilike.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/diog_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/diog_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/hooks/CMakeFiles/diog_hooks.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/diog_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/diog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/diog_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
