file(REMOVE_RECURSE
  "CMakeFiles/autofix_test.dir/autofix_test.cc.o"
  "CMakeFiles/autofix_test.dir/autofix_test.cc.o.d"
  "autofix_test"
  "autofix_test.pdb"
  "autofix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
