# Empty compiler generated dependencies file for autofix_test.
# This may be replaced when dependencies are built.
