# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/hooks_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_ext_test[1]_include.cmake")
include("/root/repo/build/tests/cupti_gaps_test[1]_include.cmake")
include("/root/repo/build/tests/memtrace_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/benefit_test[1]_include.cmake")
include("/root/repo/build/tests/groupings_test[1]_include.cmake")
include("/root/repo/build/tests/stages_test[1]_include.cmake")
include("/root/repo/build/tests/diogenes_integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/autofix_test[1]_include.cmake")
include("/root/repo/build/tests/chrome_trace_test[1]_include.cmake")
include("/root/repo/build/tests/uvm_test[1]_include.cmake")
include("/root/repo/build/tests/property_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/single_run_test[1]_include.cmake")
include("/root/repo/build/tests/multi_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/json_property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/memsync_engine_test[1]_include.cmake")
include("/root/repo/build/tests/compare_test[1]_include.cmake")
