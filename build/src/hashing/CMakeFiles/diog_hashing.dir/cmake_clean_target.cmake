file(REMOVE_RECURSE
  "libdiog_hashing.a"
)
