# Empty dependencies file for diog_hashing.
# This may be replaced when dependencies are built.
