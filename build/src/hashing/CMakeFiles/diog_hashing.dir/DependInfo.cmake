
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/content_hash.cc" "src/hashing/CMakeFiles/diog_hashing.dir/content_hash.cc.o" "gcc" "src/hashing/CMakeFiles/diog_hashing.dir/content_hash.cc.o.d"
  "/root/repo/src/hashing/dedup_store.cc" "src/hashing/CMakeFiles/diog_hashing.dir/dedup_store.cc.o" "gcc" "src/hashing/CMakeFiles/diog_hashing.dir/dedup_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
