file(REMOVE_RECURSE
  "CMakeFiles/diog_hashing.dir/content_hash.cc.o"
  "CMakeFiles/diog_hashing.dir/content_hash.cc.o.d"
  "CMakeFiles/diog_hashing.dir/dedup_store.cc.o"
  "CMakeFiles/diog_hashing.dir/dedup_store.cc.o.d"
  "libdiog_hashing.a"
  "libdiog_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
