file(REMOVE_RECURSE
  "libdiog_json.a"
)
