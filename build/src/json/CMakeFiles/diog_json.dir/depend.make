# Empty dependencies file for diog_json.
# This may be replaced when dependencies are built.
