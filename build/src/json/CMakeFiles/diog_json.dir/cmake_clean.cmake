file(REMOVE_RECURSE
  "CMakeFiles/diog_json.dir/json.cc.o"
  "CMakeFiles/diog_json.dir/json.cc.o.d"
  "libdiog_json.a"
  "libdiog_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
