# Empty dependencies file for diog_gpusim.
# This may be replaced when dependencies are built.
