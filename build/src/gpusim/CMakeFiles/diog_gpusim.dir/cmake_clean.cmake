file(REMOVE_RECURSE
  "CMakeFiles/diog_gpusim.dir/api.cc.o"
  "CMakeFiles/diog_gpusim.dir/api.cc.o.d"
  "CMakeFiles/diog_gpusim.dir/blaslike.cc.o"
  "CMakeFiles/diog_gpusim.dir/blaslike.cc.o.d"
  "CMakeFiles/diog_gpusim.dir/device.cc.o"
  "CMakeFiles/diog_gpusim.dir/device.cc.o.d"
  "CMakeFiles/diog_gpusim.dir/memory.cc.o"
  "CMakeFiles/diog_gpusim.dir/memory.cc.o.d"
  "CMakeFiles/diog_gpusim.dir/private_api.cc.o"
  "CMakeFiles/diog_gpusim.dir/private_api.cc.o.d"
  "CMakeFiles/diog_gpusim.dir/runtime.cc.o"
  "CMakeFiles/diog_gpusim.dir/runtime.cc.o.d"
  "libdiog_gpusim.a"
  "libdiog_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
