
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/api.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/api.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/api.cc.o.d"
  "/root/repo/src/gpusim/blaslike.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/blaslike.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/blaslike.cc.o.d"
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/memory.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/memory.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/memory.cc.o.d"
  "/root/repo/src/gpusim/private_api.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/private_api.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/private_api.cc.o.d"
  "/root/repo/src/gpusim/runtime.cc" "src/gpusim/CMakeFiles/diog_gpusim.dir/runtime.cc.o" "gcc" "src/gpusim/CMakeFiles/diog_gpusim.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hooks/CMakeFiles/diog_hooks.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/diog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/diog_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
