file(REMOVE_RECURSE
  "libdiog_gpusim.a"
)
