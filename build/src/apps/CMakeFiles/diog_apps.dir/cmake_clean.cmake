file(REMOVE_RECURSE
  "CMakeFiles/diog_apps.dir/amg.cc.o"
  "CMakeFiles/diog_apps.dir/amg.cc.o.d"
  "CMakeFiles/diog_apps.dir/cuibm.cc.o"
  "CMakeFiles/diog_apps.dir/cuibm.cc.o.d"
  "CMakeFiles/diog_apps.dir/cumf_als.cc.o"
  "CMakeFiles/diog_apps.dir/cumf_als.cc.o.d"
  "CMakeFiles/diog_apps.dir/rodinia_gaussian.cc.o"
  "CMakeFiles/diog_apps.dir/rodinia_gaussian.cc.o.d"
  "CMakeFiles/diog_apps.dir/uvm_stencil.cc.o"
  "CMakeFiles/diog_apps.dir/uvm_stencil.cc.o.d"
  "libdiog_apps.a"
  "libdiog_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
