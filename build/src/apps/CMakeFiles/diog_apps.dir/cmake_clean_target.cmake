file(REMOVE_RECURSE
  "libdiog_apps.a"
)
