# Empty compiler generated dependencies file for diog_apps.
# This may be replaced when dependencies are built.
