
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autofix.cc" "src/core/CMakeFiles/diog_core.dir/autofix.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/autofix.cc.o.d"
  "/root/repo/src/core/benefit.cc" "src/core/CMakeFiles/diog_core.dir/benefit.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/benefit.cc.o.d"
  "/root/repo/src/core/chrome_trace.cc" "src/core/CMakeFiles/diog_core.dir/chrome_trace.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/chrome_trace.cc.o.d"
  "/root/repo/src/core/compare.cc" "src/core/CMakeFiles/diog_core.dir/compare.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/compare.cc.o.d"
  "/root/repo/src/core/diogenes.cc" "src/core/CMakeFiles/diog_core.dir/diogenes.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/diogenes.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/diog_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/graph.cc.o.d"
  "/root/repo/src/core/groupings.cc" "src/core/CMakeFiles/diog_core.dir/groupings.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/groupings.cc.o.d"
  "/root/repo/src/core/memsync_engine.cc" "src/core/CMakeFiles/diog_core.dir/memsync_engine.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/memsync_engine.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/diog_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/model.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/diog_core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/replay.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/diog_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/report.cc.o.d"
  "/root/repo/src/core/single_run.cc" "src/core/CMakeFiles/diog_core.dir/single_run.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/single_run.cc.o.d"
  "/root/repo/src/core/stage1_baseline.cc" "src/core/CMakeFiles/diog_core.dir/stage1_baseline.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/stage1_baseline.cc.o.d"
  "/root/repo/src/core/stage2_tracing.cc" "src/core/CMakeFiles/diog_core.dir/stage2_tracing.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/stage2_tracing.cc.o.d"
  "/root/repo/src/core/stage3_memhash.cc" "src/core/CMakeFiles/diog_core.dir/stage3_memhash.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/stage3_memhash.cc.o.d"
  "/root/repo/src/core/stage4_syncuse.cc" "src/core/CMakeFiles/diog_core.dir/stage4_syncuse.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/stage4_syncuse.cc.o.d"
  "/root/repo/src/core/uvm_analysis.cc" "src/core/CMakeFiles/diog_core.dir/uvm_analysis.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/uvm_analysis.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/diog_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/diog_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/diog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/diog_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/hooks/CMakeFiles/diog_hooks.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/diog_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/diog_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/diog_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
