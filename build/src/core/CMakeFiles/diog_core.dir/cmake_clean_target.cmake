file(REMOVE_RECURSE
  "libdiog_core.a"
)
