# Empty dependencies file for diog_core.
# This may be replaced when dependencies are built.
