# Empty compiler generated dependencies file for diog_memtrace.
# This may be replaced when dependencies are built.
