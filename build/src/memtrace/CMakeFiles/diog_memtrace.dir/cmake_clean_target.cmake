file(REMOVE_RECURSE
  "libdiog_memtrace.a"
)
