file(REMOVE_RECURSE
  "CMakeFiles/diog_memtrace.dir/page_tracer.cc.o"
  "CMakeFiles/diog_memtrace.dir/page_tracer.cc.o.d"
  "libdiog_memtrace.a"
  "libdiog_memtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_memtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
