file(REMOVE_RECURSE
  "CMakeFiles/diog_baselines.dir/profilers.cc.o"
  "CMakeFiles/diog_baselines.dir/profilers.cc.o.d"
  "libdiog_baselines.a"
  "libdiog_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
