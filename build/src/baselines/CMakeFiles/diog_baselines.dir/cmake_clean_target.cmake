file(REMOVE_RECURSE
  "libdiog_baselines.a"
)
