# Empty compiler generated dependencies file for diog_baselines.
# This may be replaced when dependencies are built.
