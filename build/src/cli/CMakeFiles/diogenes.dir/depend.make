# Empty dependencies file for diogenes.
# This may be replaced when dependencies are built.
