file(REMOVE_RECURSE
  "CMakeFiles/diogenes.dir/main.cc.o"
  "CMakeFiles/diogenes.dir/main.cc.o.d"
  "diogenes"
  "diogenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diogenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
