
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hooks/fn.cc" "src/hooks/CMakeFiles/diog_hooks.dir/fn.cc.o" "gcc" "src/hooks/CMakeFiles/diog_hooks.dir/fn.cc.o.d"
  "/root/repo/src/hooks/hook_table.cc" "src/hooks/CMakeFiles/diog_hooks.dir/hook_table.cc.o" "gcc" "src/hooks/CMakeFiles/diog_hooks.dir/hook_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/diog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
