file(REMOVE_RECURSE
  "CMakeFiles/diog_hooks.dir/fn.cc.o"
  "CMakeFiles/diog_hooks.dir/fn.cc.o.d"
  "CMakeFiles/diog_hooks.dir/hook_table.cc.o"
  "CMakeFiles/diog_hooks.dir/hook_table.cc.o.d"
  "libdiog_hooks.a"
  "libdiog_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
