file(REMOVE_RECURSE
  "libdiog_hooks.a"
)
