# Empty dependencies file for diog_hooks.
# This may be replaced when dependencies are built.
