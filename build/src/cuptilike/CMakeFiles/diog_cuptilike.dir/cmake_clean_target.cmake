file(REMOVE_RECURSE
  "libdiog_cuptilike.a"
)
