# Empty compiler generated dependencies file for diog_cuptilike.
# This may be replaced when dependencies are built.
