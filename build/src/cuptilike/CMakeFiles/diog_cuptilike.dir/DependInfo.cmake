
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuptilike/cupti.cc" "src/cuptilike/CMakeFiles/diog_cuptilike.dir/cupti.cc.o" "gcc" "src/cuptilike/CMakeFiles/diog_cuptilike.dir/cupti.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/diog_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hooks/CMakeFiles/diog_hooks.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/diog_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/diog_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
