file(REMOVE_RECURSE
  "CMakeFiles/diog_cuptilike.dir/cupti.cc.o"
  "CMakeFiles/diog_cuptilike.dir/cupti.cc.o.d"
  "libdiog_cuptilike.a"
  "libdiog_cuptilike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_cuptilike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
