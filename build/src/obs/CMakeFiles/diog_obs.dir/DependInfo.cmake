
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/accountant.cc" "src/obs/CMakeFiles/diog_obs.dir/accountant.cc.o" "gcc" "src/obs/CMakeFiles/diog_obs.dir/accountant.cc.o.d"
  "/root/repo/src/obs/logger.cc" "src/obs/CMakeFiles/diog_obs.dir/logger.cc.o" "gcc" "src/obs/CMakeFiles/diog_obs.dir/logger.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/diog_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/diog_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/span.cc" "src/obs/CMakeFiles/diog_obs.dir/span.cc.o" "gcc" "src/obs/CMakeFiles/diog_obs.dir/span.cc.o.d"
  "/root/repo/src/obs/telemetry.cc" "src/obs/CMakeFiles/diog_obs.dir/telemetry.cc.o" "gcc" "src/obs/CMakeFiles/diog_obs.dir/telemetry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/diog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/diog_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
