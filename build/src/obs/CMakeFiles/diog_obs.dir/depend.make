# Empty dependencies file for diog_obs.
# This may be replaced when dependencies are built.
