file(REMOVE_RECURSE
  "CMakeFiles/diog_obs.dir/accountant.cc.o"
  "CMakeFiles/diog_obs.dir/accountant.cc.o.d"
  "CMakeFiles/diog_obs.dir/logger.cc.o"
  "CMakeFiles/diog_obs.dir/logger.cc.o.d"
  "CMakeFiles/diog_obs.dir/metrics.cc.o"
  "CMakeFiles/diog_obs.dir/metrics.cc.o.d"
  "CMakeFiles/diog_obs.dir/span.cc.o"
  "CMakeFiles/diog_obs.dir/span.cc.o.d"
  "CMakeFiles/diog_obs.dir/telemetry.cc.o"
  "CMakeFiles/diog_obs.dir/telemetry.cc.o.d"
  "libdiog_obs.a"
  "libdiog_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
