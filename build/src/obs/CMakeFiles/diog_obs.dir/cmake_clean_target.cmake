file(REMOVE_RECURSE
  "libdiog_obs.a"
)
