# Empty compiler generated dependencies file for diog_support.
# This may be replaced when dependencies are built.
