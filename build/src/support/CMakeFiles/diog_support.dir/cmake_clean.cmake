file(REMOVE_RECURSE
  "CMakeFiles/diog_support.dir/clock.cc.o"
  "CMakeFiles/diog_support.dir/clock.cc.o.d"
  "CMakeFiles/diog_support.dir/demangle.cc.o"
  "CMakeFiles/diog_support.dir/demangle.cc.o.d"
  "CMakeFiles/diog_support.dir/rng.cc.o"
  "CMakeFiles/diog_support.dir/rng.cc.o.d"
  "CMakeFiles/diog_support.dir/strings.cc.o"
  "CMakeFiles/diog_support.dir/strings.cc.o.d"
  "libdiog_support.a"
  "libdiog_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
