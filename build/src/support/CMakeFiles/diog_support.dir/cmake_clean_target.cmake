file(REMOVE_RECURSE
  "libdiog_support.a"
)
