# Empty dependencies file for diog_trace.
# This may be replaced when dependencies are built.
