file(REMOVE_RECURSE
  "libdiog_trace.a"
)
