file(REMOVE_RECURSE
  "CMakeFiles/diog_trace.dir/callstack.cc.o"
  "CMakeFiles/diog_trace.dir/callstack.cc.o.d"
  "libdiog_trace.a"
  "libdiog_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diog_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
