# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("json")
subdirs("obs")
subdirs("hashing")
subdirs("trace")
subdirs("hooks")
subdirs("gpusim")
subdirs("cuptilike")
subdirs("memtrace")
subdirs("core")
subdirs("baselines")
subdirs("apps")
subdirs("cli")
