# Empty dependencies file for hidden_sync_audit.
# This may be replaced when dependencies are built.
