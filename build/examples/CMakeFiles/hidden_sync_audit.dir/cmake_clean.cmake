file(REMOVE_RECURSE
  "CMakeFiles/hidden_sync_audit.dir/hidden_sync_audit.cpp.o"
  "CMakeFiles/hidden_sync_audit.dir/hidden_sync_audit.cpp.o.d"
  "hidden_sync_audit"
  "hidden_sync_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_sync_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
