# Empty compiler generated dependencies file for hidden_sync_audit.
# This may be replaced when dependencies are built.
