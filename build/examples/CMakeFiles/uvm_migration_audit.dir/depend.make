# Empty dependencies file for uvm_migration_audit.
# This may be replaced when dependencies are built.
