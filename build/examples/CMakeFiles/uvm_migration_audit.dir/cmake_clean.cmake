file(REMOVE_RECURSE
  "CMakeFiles/uvm_migration_audit.dir/uvm_migration_audit.cpp.o"
  "CMakeFiles/uvm_migration_audit.dir/uvm_migration_audit.cpp.o.d"
  "uvm_migration_audit"
  "uvm_migration_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvm_migration_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
