# Empty compiler generated dependencies file for whatif_graph.
# This may be replaced when dependencies are built.
