file(REMOVE_RECURSE
  "CMakeFiles/whatif_graph.dir/whatif_graph.cpp.o"
  "CMakeFiles/whatif_graph.dir/whatif_graph.cpp.o.d"
  "whatif_graph"
  "whatif_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
