file(REMOVE_RECURSE
  "CMakeFiles/sequence_explorer.dir/sequence_explorer.cpp.o"
  "CMakeFiles/sequence_explorer.dir/sequence_explorer.cpp.o.d"
  "sequence_explorer"
  "sequence_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
