# Empty compiler generated dependencies file for sequence_explorer.
# This may be replaced when dependencies are built.
