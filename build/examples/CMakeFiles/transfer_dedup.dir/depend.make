# Empty dependencies file for transfer_dedup.
# This may be replaced when dependencies are built.
