file(REMOVE_RECURSE
  "CMakeFiles/transfer_dedup.dir/transfer_dedup.cpp.o"
  "CMakeFiles/transfer_dedup.dir/transfer_dedup.cpp.o.d"
  "transfer_dedup"
  "transfer_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
