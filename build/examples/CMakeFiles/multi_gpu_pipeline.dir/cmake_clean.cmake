file(REMOVE_RECURSE
  "CMakeFiles/multi_gpu_pipeline.dir/multi_gpu_pipeline.cpp.o"
  "CMakeFiles/multi_gpu_pipeline.dir/multi_gpu_pipeline.cpp.o.d"
  "multi_gpu_pipeline"
  "multi_gpu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_gpu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
