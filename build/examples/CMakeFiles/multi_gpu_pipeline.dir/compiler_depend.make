# Empty compiler generated dependencies file for multi_gpu_pipeline.
# This may be replaced when dependencies are built.
