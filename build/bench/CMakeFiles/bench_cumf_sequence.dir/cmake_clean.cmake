file(REMOVE_RECURSE
  "CMakeFiles/bench_cumf_sequence.dir/bench_cumf_sequence.cc.o"
  "CMakeFiles/bench_cumf_sequence.dir/bench_cumf_sequence.cc.o.d"
  "bench_cumf_sequence"
  "bench_cumf_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cumf_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
