# Empty compiler generated dependencies file for bench_cumf_sequence.
# This may be replaced when dependencies are built.
