file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stages.dir/bench_fig1_stages.cc.o"
  "CMakeFiles/bench_fig1_stages.dir/bench_fig1_stages.cc.o.d"
  "bench_fig1_stages"
  "bench_fig1_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
