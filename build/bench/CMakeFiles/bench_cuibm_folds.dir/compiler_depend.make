# Empty compiler generated dependencies file for bench_cuibm_folds.
# This may be replaced when dependencies are built.
