file(REMOVE_RECURSE
  "CMakeFiles/bench_cuibm_folds.dir/bench_cuibm_folds.cc.o"
  "CMakeFiles/bench_cuibm_folds.dir/bench_cuibm_folds.cc.o.d"
  "bench_cuibm_folds"
  "bench_cuibm_folds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cuibm_folds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
