file(REMOVE_RECURSE
  "CMakeFiles/bench_uvm.dir/bench_uvm.cc.o"
  "CMakeFiles/bench_uvm.dir/bench_uvm.cc.o.d"
  "bench_uvm"
  "bench_uvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
