# Empty compiler generated dependencies file for bench_uvm.
# This may be replaced when dependencies are built.
