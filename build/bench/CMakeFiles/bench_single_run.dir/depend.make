# Empty dependencies file for bench_single_run.
# This may be replaced when dependencies are built.
