file(REMOVE_RECURSE
  "CMakeFiles/bench_single_run.dir/bench_single_run.cc.o"
  "CMakeFiles/bench_single_run.dir/bench_single_run.cc.o.d"
  "bench_single_run"
  "bench_single_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
