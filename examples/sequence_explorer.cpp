// Sequence explorer: the paper's terminal workflow (§4, Figures 6-8) as
// a command-line tool over the four evaluation applications.
//
//   sequence_explorer                          # overview of cumf_als
//   sequence_explorer cuIBM                    # overview of another app
//   sequence_explorer cumf_als seq 1           # list sequence #1
//   sequence_explorer cumf_als sub 1 10 23     # refine a subsequence
//   sequence_explorer AMG fold cudaMemset      # expand one fold
//
// Subsequence refinement re-analyzes the already-collected graph — no
// additional run of the application happens for it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/apps.h"
#include "core/diogenes.h"
#include "core/report.h"
#include "support/strings.h"

using namespace diog;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sequence_explorer [app] [overview|seq N|sub N A B|"
               "fold API]\n"
               "  app: cumf_als | cuIBM | AMG | Rodinia (default cumf_als)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name = argc > 1 ? argv[1] : "cumf_als";
  const auto apps_list = apps::all_apps();
  const apps::AppPair* app = nullptr;
  for (const auto& a : apps_list) {
    if (a.name == app_name) app = &a;
  }
  if (app == nullptr) return usage();

  std::fprintf(stderr, "[running the 5-stage pipeline on %s...]\n",
               app_name.c_str());
  ffm::Diogenes tool(app->pathological);
  const ffm::AnalysisResult r = tool.analyze();

  const std::string mode = argc > 2 ? argv[2] : "overview";

  if (mode == "overview") {
    std::printf("%s", ffm::render_overview(r).c_str());
    std::printf("\n%zu sequences found; 'seq N' to list one, "
                "'sub N first last' to refine.\n",
                r.sequences.size());
    return 0;
  }

  if (mode == "seq" || mode == "sub") {
    if (argc < 4) return usage();
    const std::size_t n = std::strtoul(argv[3], nullptr, 10);
    if (n < 1 || n > r.sequences.size()) {
      std::fprintf(stderr, "no sequence #%zu (have %zu)\n", n,
                   r.sequences.size());
      return 1;
    }
    const ffm::Group& seq = r.sequences[n - 1];
    if (mode == "seq") {
      std::printf("%s", ffm::render_sequence(r, seq).c_str());
      return 0;
    }
    if (argc < 6) return usage();
    const std::size_t first = std::strtoul(argv[4], nullptr, 10);
    const std::size_t last = std::strtoul(argv[5], nullptr, 10);
    const auto entries = ffm::sequence_entries(r.graph, seq);
    if (first < 1 || last < first || last > entries.size()) {
      std::fprintf(stderr, "bounds must satisfy 1 <= first <= last <= %zu\n",
                   entries.size());
      return 1;
    }
    const ffm::Group sub = ffm::subsequence(r.graph, seq, first, last);
    std::printf("%s", ffm::render_subsequence(r, sub, first, last).c_str());
    std::printf("(full sequence recovers %s; this slice %s — refined with "
                "no new data collection)\n",
                format_seconds(seq.benefit).c_str(),
                format_seconds(sub.benefit).c_str());
    return 0;
  }

  if (mode == "fold") {
    if (argc < 4) return usage();
    for (const ffm::Group& fold : r.folds) {
      if (fold.title == std::string("Fold on ") + argv[3]) {
        std::printf("%s", ffm::render_fold_expansion(r, fold).c_str());
        return 0;
      }
    }
    std::fprintf(stderr, "no fold on '%s'; available:\n", argv[3]);
    for (const ffm::Group& fold : r.folds) {
      std::fprintf(stderr, "  %s\n", fold.title.c_str());
    }
    return 1;
  }

  return usage();
}
