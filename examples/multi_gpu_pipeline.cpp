// Multi-GPU pipeline: the four-GPU node (like the paper's Ray machines)
// with a producer/consumer pipeline across two devices.
//
// Two versions of the same pipeline:
//   naive    — the producer result is dragged through host memory with a
//              blocking cudaMemcpy on each side, and a gratuitous
//              cudaDeviceSynchronize guards every hop;
//   peered   — cudaDeviceEnablePeerAccess + cudaMemcpyPeer move the data
//              directly over the P2P fabric, and events order the work.
// Diogenes analyzes the naive version; the per-device hidden syncs show
// up like any other, and the actual win of the peered version is
// measured alongside.
#include <cstdio>
#include <memory>

#include "core/diogenes.h"
#include "core/report.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/strings.h"
#include "trace/callstack.h"

using namespace diog;
using gpusim::KernelDesc;
using hooks::MemcpyKind;

namespace {

gpusim::DeviceConfig node_config() {
  gpusim::DeviceConfig d;
  d.device_count = 4;
  d.p2p_bandwidth_bytes_per_s = 35e9;  // NVLink-class
  return d;
}

constexpr std::size_t kTileBytes = 8 << 20;  // 8 MiB per hop
constexpr int kSteps = 12;

void producer_step(void* d_out, int step) {
  KernelDesc k;
  k.name = "produce";
  k.duration = ms(4);
  float* out = static_cast<float*>(d_out);
  k.body = [out, step] { out[0] = static_cast<float>(step); };
  (void)gpusim::cudaLaunchKernel(k);
}

void consumer_step(void* d_in) {
  (void)d_in;
  KernelDesc k;
  k.name = "consume";
  k.duration = ms(4);
  (void)gpusim::cudaLaunchKernel(k);
}

ffm::Workload naive_pipeline() {
  auto staging = std::make_shared<gpusim::HostBuffer<char>>(kTileBytes);
  ffm::Workload w;
  w.name = "pipeline_naive";
  w.device = node_config();
  w.body = [staging] {
    DIOG_APP_FRAME("pipeline_main", "pipeline.cu", 10);
    (void)gpusim::cudaSetDevice(0);
    void* d_prod = nullptr;
    (void)gpusim::cudaMalloc(&d_prod, kTileBytes);
    (void)gpusim::cudaSetDevice(1);
    void* d_cons = nullptr;
    (void)gpusim::cudaMalloc(&d_cons, kTileBytes);

    for (int step = 0; step < kSteps; ++step) {
      DIOG_APP_FRAME("hop", "pipeline.cu", 25);
      (void)gpusim::cudaSetDevice(0);
      producer_step(d_prod, step);
      (void)gpusim::cudaDeviceSynchronize();  // gratuitous
      // Staged through the host: two bus crossings, both blocking.
      (void)gpusim::cudaMemcpy(staging->data(), d_prod, kTileBytes,
                               MemcpyKind::kDeviceToHost);
      (void)gpusim::cudaSetDevice(1);
      (void)gpusim::cudaMemcpy(d_cons, staging->data(), kTileBytes,
                               MemcpyKind::kHostToDevice);
      consumer_step(d_cons);
      (void)gpusim::cudaDeviceSynchronize();  // gratuitous
    }
    (void)gpusim::cudaFree(d_cons);
    (void)gpusim::cudaSetDevice(0);
    (void)gpusim::cudaFree(d_prod);
  };
  return w;
}

ffm::Workload peered_pipeline() {
  ffm::Workload w;
  w.name = "pipeline_peered";
  w.device = node_config();
  w.body = [] {
    DIOG_APP_FRAME("pipeline_main", "pipeline.cu", 60);
    (void)gpusim::cudaSetDevice(0);
    (void)gpusim::cudaDeviceEnablePeerAccess(1);
    void* d_prod = nullptr;
    (void)gpusim::cudaMalloc(&d_prod, kTileBytes);
    (void)gpusim::cudaSetDevice(1);
    void* d_cons = nullptr;
    (void)gpusim::cudaMalloc(&d_cons, kTileBytes);

    for (int step = 0; step < kSteps; ++step) {
      DIOG_APP_FRAME("hop", "pipeline.cu", 73);
      (void)gpusim::cudaSetDevice(0);
      producer_step(d_prod, step);
      // One direct hop over the fabric; its own completion is the only
      // synchronization.
      (void)gpusim::cudaMemcpyPeer(d_cons, 1, d_prod, 0, kTileBytes);
      (void)gpusim::cudaSetDevice(1);
      consumer_step(d_cons);
    }
    (void)gpusim::cudaSetDevice(1);
    (void)gpusim::cudaDeviceSynchronize();
    (void)gpusim::cudaFree(d_cons);
    (void)gpusim::cudaSetDevice(0);
    (void)gpusim::cudaFree(d_prod);
  };
  return w;
}

}  // namespace

int main() {
  const ffm::Workload naive = naive_pipeline();
  const ffm::Workload peered = peered_pipeline();

  const Duration naive_time = ffm::run_uninstrumented(naive);
  const Duration peered_time = ffm::run_uninstrumented(peered);
  std::printf("host-staged pipeline: %s\n",
              format_seconds(naive_time).c_str());
  std::printf("peer-to-peer pipeline: %s  (%.1f%% faster)\n\n",
              format_seconds(peered_time).c_str(),
              100.0 *
                  static_cast<double>((naive_time - peered_time).count()) /
                  static_cast<double>(naive_time.count()));

  ffm::Diogenes tool(naive);
  const ffm::AnalysisResult r = tool.analyze();
  std::printf("%s\n", ffm::render_overview(r, 5).c_str());
  std::printf("%s", ffm::render_api_savings(r).c_str());
  std::printf(
      "\nThe gratuitous per-hop deviceSynchronize calls price near zero\n"
      "(their waits migrate to the blocking copies); the copies\n"
      "themselves are the recoverable item — which the peer-to-peer\n"
      "variant eliminates.\n");
  return 0;
}
