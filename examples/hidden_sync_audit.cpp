// Hidden-synchronization audit: how much of your application's blocking
// is invisible to vendor tooling?
//
// This example instruments the same run twice — once through the
// CUPTI-like vendor interface (what NVProf/HPCToolkit see) and once with
// a probe on the internal driver wait function that Diogenes' stage-1
// discovery locates — and prints a per-API accounting of reported vs
// actual CPU blocking time. The workload mixes explicit, implicit,
// conditional, and private-API synchronizations (paper §2.2, Figure 3).
#include <cstdio>
#include <map>
#include <memory>

#include "core/stage1_baseline.h"
#include "cuptilike/cupti.h"
#include "gpusim/api.h"
#include "gpusim/blaslike.h"
#include "gpusim/host_buffer.h"
#include "support/strings.h"
#include "trace/callstack.h"

using namespace diog;
using gpusim::KernelDesc;
using hooks::Fn;
using hooks::MemcpyKind;

namespace {

void run_workload(gpusim::HostBuffer<float>& pageable_buf) {
  DIOG_APP_FRAME("audit_main", "audit.cu", 10);
  void* d_data = nullptr;
  (void)gpusim::cudaMalloc(&d_data, pageable_buf.size_bytes());
  void* managed = nullptr;
  (void)gpusim::cudaMallocManaged(&managed, 64 * 1024);

  blaslike::Handle blas;

  for (int i = 0; i < 10; ++i) {
    KernelDesc k;
    k.name = "work";
    k.duration = ms(3);
    (void)gpusim::cudaLaunchKernel(k);

    // Explicit sync (CUPTI sees this one).
    (void)gpusim::cudaDeviceSynchronize();

    (void)gpusim::cudaLaunchKernel(k);
    // Conditional sync: async D2H into pageable memory blocks silently.
    (void)gpusim::cudaMemcpyAsync(pageable_buf.data(), d_data,
                                  pageable_buf.size_bytes(),
                                  MemcpyKind::kDeviceToHost);

    (void)gpusim::cudaLaunchKernel(k);
    // Conditional sync: memset on unified memory.
    (void)gpusim::cudaMemset(managed, 0, 64 * 1024);

    (void)gpusim::cudaLaunchKernel(k);
    // Implicit sync: temporary teardown.
    void* tmp = nullptr;
    (void)gpusim::cudaMalloc(&tmp, 4096);
    (void)gpusim::cudaFree(tmp);

    // Private-API sync inside the vendor math library.
    blaslike::cholesky_solve_batched(blas, nullptr, nullptr, 2, 8);
  }
  (void)gpusim::cudaFree(managed);
  (void)gpusim::cudaFree(d_data);
}

}  // namespace

int main() {
  // Step 1: discover the internal wait function by probing, exactly as
  // stage 1 does — no hardcoded knowledge of the driver.
  const Fn wait_fn = ffm::discover_wait_fn(gpusim::DeviceConfig{});
  std::printf("discovered wait funnel: %s\n\n",
              std::string(hooks::fn_name(wait_fn)).c_str());

  gpusim::Runtime rt;
  cupti::Subscriber cupti_view;
  cupti_view.attach(rt);

  // Per-API ground-truth blocking, observed at the wait funnel.
  std::map<Fn, Duration> actual_blocking;
  std::vector<Fn> api_stack;
  hooks::Probe ctx_probe;
  ctx_probe.on_entry = [&](const hooks::HookContext& ctx) {
    api_stack.push_back(ctx.fn);
  };
  ctx_probe.on_exit = [&](const hooks::HookContext&) { api_stack.pop_back(); };
  rt.hooks().attach_matching(
      [](Fn f) { return hooks::is_public_api(f) || hooks::is_private_api(f); },
      ctx_probe);
  hooks::Probe wait_probe;
  wait_probe.on_exit = [&](const hooks::HookContext& ctx) {
    if (!api_stack.empty()) {
      actual_blocking[api_stack.back()] += ctx.info->sync_wait;
    }
  };
  rt.hooks().attach(wait_fn, wait_probe);

  gpusim::HostBuffer<float> pageable(256 * 1024);
  Duration exec;
  {
    gpusim::RuntimeScope scope(rt);
    run_workload(pageable);
    exec = rt.clock().now();
  }

  // What CUPTI reported as synchronization.
  std::map<Fn, Duration> cupti_blocking;
  for (const auto& a : cupti_view.activities()) {
    if (a.kind == gpusim::CuptiActivity::Kind::kSynchronization) {
      cupti_blocking[a.api] += a.end - a.start;
    }
  }

  std::printf("%-26s %14s %16s\n", "API call", "CUPTI-reported",
              "actual blocking");
  std::printf("%s\n", std::string(58, '-').c_str());
  Duration total_actual{0}, total_reported{0};
  for (const auto& [fn, blocked] : actual_blocking) {
    const Duration reported = cupti_blocking.contains(fn)
                                  ? cupti_blocking[fn]
                                  : Duration{0};
    total_actual += blocked;
    total_reported += reported;
    std::printf("%-26s %14s %16s\n",
                std::string(hooks::fn_name(fn)).c_str(),
                format_seconds(reported).c_str(),
                format_seconds(blocked).c_str());
  }
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-26s %14s %16s\n", "total", format_seconds(total_reported).c_str(),
              format_seconds(total_actual).c_str());
  const double hidden =
      1.0 - static_cast<double>(total_reported.count()) /
                static_cast<double>(total_actual.count());
  std::printf("\n%s of blocking time (%s of a %s run) is invisible to the\n"
              "vendor interface — the gap Diogenes exists to close.\n",
              format_percent(hidden).c_str(),
              format_seconds(total_actual - total_reported).c_str(),
              format_seconds(exec).c_str());
  return 0;
}
