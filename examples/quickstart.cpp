// Quickstart: point Diogenes at a small CUDA-style application and read
// its findings.
//
// The application below commits the classic sin: it launches a kernel,
// then immediately calls cudaDeviceSynchronize and tears down a
// temporary with cudaFree — both of which stall the CPU — before finally
// copying the result back and using it. Diogenes runs it five times
// (four collection stages + analysis) and reports which of those stalls
// are worth fixing and by how much.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/diogenes.h"
#include "core/report.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/strings.h"
#include "trace/callstack.h"

using namespace diog;

namespace {

// The workload: written exactly like a CUDA program, with DIOG_APP_FRAME
// markers standing in for the debug info a real binary would carry.
struct MyApp {
  std::shared_ptr<gpusim::HostBuffer<float>> result =
      std::make_shared<gpusim::HostBuffer<float>>(1024);

  void operator()() const {
    DIOG_APP_FRAME("main", "my_app.cu", 12);

    void* d_data = nullptr;
    void* d_temp = nullptr;
    (void)gpusim::cudaMalloc(&d_data, result->size_bytes());

    for (int step = 0; step < 5; ++step) {
      DIOG_APP_FRAME("simulate_step", "my_app.cu", 30);
      (void)gpusim::cudaMalloc(&d_temp, 4096);

      gpusim::KernelDesc kernel;
      kernel.name = "simulate_kernel";
      kernel.duration = ms(10);
      float* out = static_cast<float*>(d_data);
      kernel.body = [out, step] { out[0] = static_cast<float>(step); };
      (void)gpusim::cudaLaunchKernel(kernel);

      {
        // Habitual, unnecessary: the readback below already waits.
        DIOG_APP_FRAME("simulate_step", "my_app.cu", 41);
        (void)gpusim::cudaDeviceSynchronize();
      }
      {
        // Hidden synchronization: freeing device memory drains the GPU.
        DIOG_APP_FRAME("simulate_step", "my_app.cu", 44);
        (void)gpusim::cudaFree(d_temp);
      }

      gpusim::cpu_work(ms(12));  // prepare the next step on the CPU

      {
        DIOG_APP_FRAME("simulate_step", "my_app.cu", 49);
        (void)gpusim::cudaMemcpy(result->data(), d_data,
                                 result->size_bytes(),
                                 hooks::MemcpyKind::kDeviceToHost);
      }
      volatile float sink = (*result)[0];  // the data IS used right away
      (void)sink;
    }
    (void)gpusim::cudaFree(d_data);
  }
};

}  // namespace

int main() {
  ffm::Workload workload;
  workload.name = "quickstart";
  workload.device = gpusim::DeviceConfig{};  // a Pascal-class default
  workload.body = MyApp{};

  // Run all five FFM stages. No interaction is needed between stages.
  ffm::ToolConfig config;
  config.verbose = true;  // narrate the stages on stderr
  ffm::Diogenes tool(workload, config);
  const ffm::AnalysisResult result = tool.analyze();

  // 1. The overview: problem groupings sorted by expected benefit.
  std::printf("%s\n", ffm::render_overview(result).c_str());

  // 2. Per-API savings — compare against what a profiler would tell you:
  //    cudaDeviceSynchronize consumed the most time, yet the benefit of
  //    removing it is near zero (its wait would migrate to the
  //    readback); the cudaFree stalls are the real win.
  std::printf("%s\n", ffm::render_api_savings(result).c_str());

  // 3. Everything is exportable as JSON for other tools.
  const json::Value exported = ffm::export_json(result);
  std::printf("export: %zu top-level keys, %s total estimated benefit\n",
              exported.as_object().size(),
              format_seconds(result.benefit.total).c_str());

  std::printf("\ncollection cost: %.1fx the baseline run (4 stages)\n",
              result.overhead_factor);
  return 0;
}
