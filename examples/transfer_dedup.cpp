// Duplicate-transfer detection: content-based deduplication of PCIe
// traffic (paper §3.3.2).
//
// The workload re-uploads a lookup table and a coefficients block every
// frame even though neither ever changes — a pattern common in ported
// codes ("upload everything each iteration, it's simpler"). Stage 3
// hashes each transferred buffer and points every duplicate at the
// transfer that first moved the same bytes.
#include <cstdio>
#include <memory>

#include "core/diogenes.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/strings.h"
#include "trace/callstack.h"

using namespace diog;
using hooks::MemcpyKind;

namespace {

struct FrameLoop {
  std::shared_ptr<gpusim::HostBuffer<float>> lut =
      std::make_shared<gpusim::HostBuffer<float>>(512 * 1024);
  std::shared_ptr<gpusim::HostBuffer<float>> coeffs =
      std::make_shared<gpusim::HostBuffer<float>>(64 * 1024);
  std::shared_ptr<gpusim::HostBuffer<float>> frame =
      std::make_shared<gpusim::HostBuffer<float>>(256 * 1024);
  int frames = 12;

  void operator()() const {
    DIOG_APP_FRAME("render_main", "render.cu", 8);
    (*lut)[0] = 1.0f;     // filled once...
    (*coeffs)[0] = 2.0f;  // ...never touched again

    void* d_lut = nullptr;
    void* d_coeffs = nullptr;
    void* d_frame = nullptr;
    (void)gpusim::cudaMalloc(&d_lut, lut->size_bytes());
    (void)gpusim::cudaMalloc(&d_coeffs, coeffs->size_bytes());
    (void)gpusim::cudaMalloc(&d_frame, frame->size_bytes());

    for (int f = 0; f < frames; ++f) {
      DIOG_APP_FRAME("render_frame", "render.cu", 31);
      {
        DIOG_APP_FRAME("upload_lut", "render.cu", 33);
        (void)gpusim::cudaMemcpy(d_lut, lut->data(), lut->size_bytes(),
                                 MemcpyKind::kHostToDevice);
      }
      {
        DIOG_APP_FRAME("upload_coeffs", "render.cu", 37);
        (void)gpusim::cudaMemcpy(d_coeffs, coeffs->data(),
                                 coeffs->size_bytes(),
                                 MemcpyKind::kHostToDevice);
      }
      {
        // The frame data genuinely changes: a legitimate upload.
        DIOG_APP_FRAME("upload_frame", "render.cu", 43);
        (*frame)[0] = static_cast<float>(f);
        (void)gpusim::cudaMemcpy(d_frame, frame->data(),
                                 frame->size_bytes(),
                                 MemcpyKind::kHostToDevice);
      }
      gpusim::KernelDesc k;
      k.name = "render_kernel";
      k.duration = ms(4);
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaDeviceSynchronize();
    }
    (void)gpusim::cudaFree(d_lut);
    (void)gpusim::cudaFree(d_coeffs);
    (void)gpusim::cudaFree(d_frame);
  }
};

}  // namespace

int main() {
  ffm::Workload w;
  w.name = "render_loop";
  w.device = gpusim::DeviceConfig{};
  w.body = FrameLoop{};

  const ffm::ToolConfig cfg;
  const ffm::Stage1Result s1 = ffm::run_stage1(w, cfg);
  const ffm::Stage2Result s2 = ffm::run_stage2(w, cfg, s1);
  const ffm::Stage3Result s3 = ffm::run_stage3(w, cfg, s1);

  std::printf("transfers hashed: %llu (%s)\n",
              static_cast<unsigned long long>(s3.transfers_hashed),
              format_bytes(s3.bytes_hashed).c_str());
  std::printf("duplicates found: %zu\n\n", s3.duplicate_transfers.size());

  // Group duplicates by the site of the duplicate call.
  std::printf("%-34s %-12s %s\n", "duplicate transfer at", "bytes",
              "first moved by op#");
  for (const ffm::DuplicateTransfer& d : s3.duplicate_transfers) {
    const ffm::OpRecord& op = s2.ops[d.op_index];
    const trace::Frame* leaf = op.stack.leaf();
    std::printf("%-34s %-12s %llu\n",
                (leaf != nullptr
                     ? leaf->file + ":" + std::to_string(leaf->line)
                     : std::string("?"))
                    .c_str(),
                format_bytes(d.bytes).c_str(),
                static_cast<unsigned long long>(d.first_op_index));
  }

  // The benefit estimate prices what removing the duplicates would save.
  ffm::Diogenes tool(w, cfg);
  const ffm::AnalysisResult r = tool.analyze();
  std::printf("\nestimated benefit of removing duplicate transfers: %s "
              "(%s of execution)\n",
              format_seconds(r.benefit.transfer_benefit).c_str(),
              format_percent(r.fraction_of_exec(r.benefit.transfer_benefit))
                  .c_str());
  std::printf("(the per-frame `frame` upload is correctly NOT flagged —\n"
              " its bytes change every iteration)\n");
  return 0;
}
