// What-if analysis on a hand-built execution graph.
//
// The expected-benefit machinery (paper §3.5, Figure 5) is usable as a
// library without running any application: describe your program's
// CPU-side structure as CWork/CLaunch/CWait nodes, mark suspected
// problems, and ask what fixing each (or any subset) would buy. This is
// the modeling exercise of Figure 4 turned into a planning tool — use it
// to decide whether a refactor is worth doing before writing it.
#include <cstdio>
#include <vector>

#include "core/benefit.h"
#include "support/strings.h"

using namespace diog;
using namespace diog::ffm;

namespace {

Node work(Duration d) {
  Node n;
  n.type = NType::kCWork;
  n.duration = d;
  return n;
}
Node launch(Duration d, ProblemType p = ProblemType::kNone) {
  Node n;
  n.type = NType::kCLaunch;
  n.duration = d;
  n.problem = p;
  return n;
}
Node wait_node(Duration d, ProblemType p = ProblemType::kNone,
               Duration first_use = Duration{0}) {
  Node n;
  n.type = NType::kCWait;
  n.duration = d;
  n.problem = p;
  n.first_use_time = first_use;
  return n;
}

ExecutionGraph finalize(std::vector<Node> nodes) {
  Duration total{0};
  TimePoint t{0};
  for (Node& n : nodes) {
    n.stime = t;
    t += n.duration;
    total += n.duration;
  }
  return ExecutionGraph(std::move(nodes), total);
}

}  // namespace

int main() {
  // A sketched pipeline iteration, ~100 ms of CPU timeline:
  //   preprocess | upload | launch | WAIT(sus) | postprocess |
  //   free temp (sus) | more CPU | sync before readback (sus, but the
  //   data is used 9 ms later -> misplaced, not unnecessary) | readback
  const ExecutionGraph g = finalize({
      work(ms(12)),                                       // 0 preprocess
      launch(ms(6), ProblemType::kUnnecessaryTransfer),   // 1 re-upload
      launch(ms(1)),                                      // 2 kernel launch
      wait_node(ms(20), ProblemType::kUnnecessarySync),   // 3 paranoia sync
      work(ms(15)),                                       // 4 postprocess
      wait_node(ms(8), ProblemType::kUnnecessarySync),    // 5 temp free
      work(ms(10)),                                       // 6 assemble
      wait_node(ms(14), ProblemType::kMisplacedSync,
                /*first_use=*/ms(9)),                     // 7 early sync
      work(ms(9)),                                        // 8 unrelated CPU
      wait_node(ms(2)),                                   // 9 readback sync
      work(ms(3)),                                        // 10 consume
      wait_node(Duration{0}),                             // 11 exit join
  });

  std::printf("iteration span: %s\n\n",
              format_seconds(g.exec_time()).c_str());

  // Price every suspected problem individually (what a single surgical
  // fix would buy)...
  std::printf("%-28s %12s %12s\n", "what-if: fix only...", "benefit",
              "% of span");
  const char* labels[] = {"the duplicate upload (1)", "the paranoia sync (3)",
                          "the temp-free stall (5)", "the early sync (7)"};
  const std::size_t problems[] = {1, 3, 5, 7};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<std::size_t> solo{problems[i]};
    const Duration b = expected_benefit_subset(g, solo).total;
    std::printf("%-28s %12s %11.1f%%\n", labels[i],
                format_seconds(b).c_str(),
                100.0 * static_cast<double>(b.count()) /
                    static_cast<double>(g.exec_time().count()));
  }

  // ...then all together (the interactions matter: freed time from one
  // fix can be re-absorbed — or unlocked — by another).
  const BenefitReport all = expected_benefit(g);
  std::printf("%-28s %12s %11.1f%%\n", "ALL of the above",
              format_seconds(all.total).c_str(),
              100.0 * static_cast<double>(all.total.count()) /
                  static_cast<double>(g.exec_time().count()));

  std::printf(
      "\nNotes:\n"
      " * node 3 is worth less than its 20 ms: only 15 ms of CPU work\n"
      "   separates it from the next wait, which absorbs the rest\n"
      "   (Figure 4's limited-benefit case);\n"
      " * node 7 is misplaced, not removable: moving it later recovers\n"
      "   its 9 ms first-use gap, no more;\n"
      " * fixing everything is NOT the sum of the parts.\n");
  return 0;
}
