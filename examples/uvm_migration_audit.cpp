// Unified-memory migration audit (the §5.3 future-work extension).
//
// Managed memory moves data for you — and stalls you without a trace:
// when the CPU touches pages the GPU currently holds, the thread blocks
// in a page-fault handler that no profiler attributes to anything. This
// example runs the UVM stencil workload (whose halo buffer ping-pongs
// between the processors every timestep), shows that a consumption
// profiler sees nothing, and then lets the extension name the thrashing
// range, its fault site, and what eliminating the ping-pong would buy —
// verified against the staged-copy fix.
#include <cstdio>

#include "apps/apps.h"
#include "baselines/profilers.h"
#include "core/uvm_analysis.h"
#include "support/strings.h"

using namespace diog;

int main() {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 150;

  const ffm::Workload pathological = apps::make_uvm_stencil(cfg);
  const ffm::Workload fixed = apps::make_uvm_stencil(cfg, true);

  const Duration native = ffm::run_uninstrumented(pathological);
  const Duration fixed_time = ffm::run_uninstrumented(fixed);
  std::printf("managed-halo version:  %s\n",
              format_seconds(native).c_str());
  std::printf("staged-halo version:   %s   (%.1f%% faster)\n\n",
              format_seconds(fixed_time).c_str(),
              100.0 * static_cast<double>((native - fixed_time).count()) /
                  static_cast<double>(native.count()));

  // 1. What a consumption profiler reports: nothing to act on.
  const baselines::ProfileResult nv =
      baselines::run_nvprof_like(pathological);
  std::printf("A CUPTI-based profiler's top entries for the slow "
              "version:\n%s\n",
              baselines::render_profile(nv, 4).c_str());

  // 2. What the migration-path instrumentation reports.
  const ffm::UvmAnalysis analysis =
      ffm::analyze_unified_memory(pathological);
  std::printf("%s\n", ffm::render_uvm(analysis).c_str());

  std::printf("estimate vs measured fix: %s vs %s\n",
              format_seconds(analysis.estimated_benefit).c_str(),
              format_seconds(native - fixed_time).c_str());

  // 3. Everything exports as JSON for other tools.
  const json::Value exported = analysis.to_json();
  std::printf("\nJSON export: %lld migrations across %zu ranges\n",
              static_cast<long long>(
                  exported.at("migration_count").as_int()),
              exported.at("ranges").size());
  return 0;
}
