// Fleet archive benchmark: ingest, dedup, listing, and sentinel
// latency over a populated archive.
//
// The archive's promise is that fleet-scale questions are answered
// from the digest index, never by reopening run files: listing and
// regression-checking a hundred archived runs must cost milliseconds,
// and re-ingesting known bytes must cost one hash, not one analysis.
// This bench ingests N byte-distinct synthetic runs of one workload,
// then measures the steady-state operations a fleet loop performs —
// and writes BENCH_archive.json with the budget verdict.
//
//   bench_archive [--out FILE] [--runs N] [--events N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/regress.h"
#include "eventstore/run_io.h"
#include "json/json.h"
#include "testkit/synth_run.h"

namespace diog::archive {
namespace {

namespace fs = std::filesystem;

// Steady-state budgets. Ingest is excluded: it legitimately pays one
// stage-5 analysis per new run; everything after it must be index-only.
constexpr double kDedupMsBudget = 50.0;    // re-add of known bytes
constexpr double kLsMsBudget = 50.0;       // full index read
constexpr double kRegressMsBudget = 50.0;  // sentinel over every workload

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double p50(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

double mean(const std::vector<double>& v) {
  double m = 0;
  for (const double x : v) m += x;
  return v.empty() ? 0.0 : m / static_cast<double>(v.size());
}

int run(const std::string& out_path, std::size_t runs,
        std::uint64_t events) {
  const std::string dir =
      (fs::temp_directory_path() / "diog_bench_archive").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // N byte-distinct variants of one workload: spacing drifts per run,
  // and every fifth run carries extra problem sites so the sentinel has
  // real variance to chew on.
  double t = now_ms();
  std::vector<std::string> files;
  files.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    const std::string path =
        dir + "/run" + std::to_string(i) + ".dgtrace";
    const evstore::TraceRun run = testkit::make_synthetic_run(
        {.events = events,
         .problem_sites = static_cast<std::uint32_t>(2 + (i % 5)),
         .op_spacing_ns = 1000 + static_cast<std::int64_t>(i)});
    evstore::save_run(path, run,
                      evstore::SaveOptions{.footer_wall_ms = 0});
    files.push_back(path);
  }
  const double synth_ms = now_ms() - t;

  Archive ar(ArchiveOptions{
      .root = dir + "/archive", .config = {}, .ingest_wall_ms = 0});

  std::vector<double> ingest;
  ingest.reserve(runs);
  for (const std::string& f : files) {
    t = now_ms();
    (void)ar.add(f);
    ingest.push_back(now_ms() - t);
  }

  std::vector<double> dedup;
  dedup.reserve(runs);
  for (const std::string& f : files) {
    t = now_ms();
    const Archive::AddResult r = ar.add(f);
    dedup.push_back(now_ms() - t);
    if (!r.deduplicated) {
      std::fprintf(stderr, "re-add of %s was not a dedup\n", f.c_str());
      return 1;
    }
  }

  std::vector<double> ls;
  std::size_t indexed = 0;
  for (int r = 0; r < 20; ++r) {
    t = now_ms();
    indexed = ar.index().size();
    ls.push_back(now_ms() - t);
  }
  if (indexed != runs) {
    std::fprintf(stderr, "index holds %zu digests, expected %zu\n",
                 indexed, runs);
    return 1;
  }

  std::vector<double> regress;
  std::size_t findings = 0;
  for (int r = 0; r < 20; ++r) {
    const std::vector<RunDigest> index = ar.index();
    t = now_ms();
    findings = 0;
    for (const RegressReport& rep : check_all(index, {})) {
      findings += rep.findings.size();
    }
    regress.push_back(now_ms() - t);
  }

  struct Row {
    const char* label;
    double p50_ms;
    double mean_ms;
    double budget_ms;  // <= 0: informational only
  };
  const std::vector<Row> rows = {
      {"ingest", p50(ingest), mean(ingest), 0},
      {"dedup_add", p50(dedup), mean(dedup), kDedupMsBudget},
      {"ls_index", p50(ls), mean(ls), kLsMsBudget},
      {"regress_all", p50(regress), mean(regress), kRegressMsBudget},
  };

  bool within_budget = true;
  json::Array out_rows;
  for (const Row& r : rows) {
    const bool ok = r.budget_ms <= 0 || r.p50_ms < r.budget_ms;
    within_budget = within_budget && ok;
    std::printf("%-12s p50 %8.3f ms  mean %8.3f ms%s\n", r.label,
                r.p50_ms, r.mean_ms, ok ? "" : "  ** OVER BUDGET **");
    json::Object row;
    row["label"] = std::string(r.label);
    row["p50_ms"] = r.p50_ms;
    row["mean_ms"] = r.mean_ms;
    if (r.budget_ms > 0) row["budget_ms"] = r.budget_ms;
    row["within_budget"] = ok;
    out_rows.emplace_back(std::move(row));
  }

  const Archive::Stats st = ar.stats();
  json::Object root;
  root["bench"] = std::string("archive");
  root["runs"] = static_cast<std::int64_t>(runs);
  root["events_per_run"] = static_cast<std::int64_t>(events);
  root["synth_ms"] = synth_ms;
  root["archived_bytes"] = static_cast<std::int64_t>(st.bytes);
  root["sentinel_findings"] = static_cast<std::int64_t>(findings);
  json::Object budget;
  budget["dedup_ms"] = kDedupMsBudget;
  budget["ls_ms"] = kLsMsBudget;
  budget["regress_ms"] = kRegressMsBudget;
  budget["within_budget"] = within_budget;
  root["budget"] = std::move(budget);
  root["operations"] = std::move(out_rows);
  json::save_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  fs::remove_all(dir);
  return within_budget ? 0 : 1;
}

}  // namespace
}  // namespace diog::archive

int main(int argc, char** argv) {
  std::string out_path = "BENCH_archive.json";
  std::size_t runs = 100;
  std::uint64_t events = 20'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_archive [--out FILE] [--runs N] "
                   "[--events N]\n");
      return 2;
    }
  }
  return diog::archive::run(out_path, runs, events);
}
