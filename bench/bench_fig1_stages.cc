// Figures 1 & 2 — the FFM pipeline walkthrough.
//
// Figure 1 is the model diagram: five stages, each feeding the next.
// This bench runs the stages one at a time on cumf_als and prints what
// each collected and handed forward — the diagram, regenerated from a
// live run. Figure 2 is the three-step illustration of identifying a
// problematic synchronization (capture GPU-writable ranges; load/store
// analysis after the sync; store the accessing instruction); the second
// half walks those steps on a minimal two-outcome program.
#include <memory>

#include "bench_common.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "core/stage4_syncuse.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "trace/callstack.h"

using namespace diog;
using namespace diog::bench;

namespace {

void figure1_walkthrough() {
  print_header("Figure 1 — the five FFM stages, data handed forward",
               "SC'19 Figure 1");
  apps::CumfAlsConfig cfg;
  cfg.iterations = 20;
  const ffm::Workload w = apps::make_cumf_als(cfg);
  const ffm::ToolConfig tool_cfg;

  std::printf("\n[run 1] Stage 1 — Baseline Measurement\n");
  const ffm::Stage1Result s1 = ffm::run_stage1(w, tool_cfg);
  std::printf("  wait function discovered by probe: %s\n",
              std::string(hooks::fn_name(s1.wait_fn)).c_str());
  std::printf("  application execution time: %s\n",
              format_seconds(s1.exec_time).c_str());
  std::printf("  synchronizing (API, stack) sites: %zu\n",
              s1.sync_sites.size());
  std::printf("  -> feeds forward: the list of functions to trace\n");

  std::printf("\n[run 2] Stage 2 — Detailed Tracing\n");
  const ffm::Stage2Result s2 = ffm::run_stage2(w, tool_cfg, s1);
  std::size_t syncs = 0, transfers = 0;
  Duration wait_total{0};
  for (const auto& op : s2.ops) {
    if (op.performed_sync) ++syncs;
    if (op.performed_transfer) ++transfers;
    wait_total += op.sync_wait;
  }
  std::printf("  traced calls: %zu (%zu syncs, %zu transfers), total "
              "blocked time %s\n",
              s2.ops.size(), syncs, transfers,
              format_seconds(wait_total).c_str());
  std::printf("  -> feeds forward: per-call timing + stacks\n");

  std::printf("\n[run 3] Stage 3 — Memory Tracing and Data Hashing\n");
  const ffm::Stage3Result s3 = ffm::run_stage3(w, tool_cfg, s1);
  std::size_t required = 0;
  for (const auto& c : s3.syncs) required += c.required ? 1 : 0;
  std::printf("  sync classifications: %zu (%zu required, %zu "
              "unnecessary)\n",
              s3.syncs.size(), required, s3.syncs.size() - required);
  std::printf("  transfers hashed: %llu (%s); duplicates: %zu\n",
              static_cast<unsigned long long>(s3.transfers_hashed),
              format_bytes(s3.bytes_hashed).c_str(),
              s3.duplicate_transfers.size());
  std::printf("  -> feeds forward: problem classification + access sites\n");

  std::printf("\n[run 4] Stage 4 — Sync-Use Analysis\n");
  const ffm::Stage4Result s4 = ffm::run_stage4(w, tool_cfg, s1);
  std::printf("  sync-to-first-use gaps measured: %zu\n", s4.uses.size());
  std::printf("  -> feeds forward: FirstUseTime per required sync\n");

  std::printf("\n[no run] Stage 5 — Analysis\n");
  const ffm::AnalysisResult r = ffm::run_analysis_stage(
      w.name, s1, s2, s3, s4, tool_cfg);
  std::printf("  graph: %zu CPU nodes; problematic: %zu\n",
              r.graph.size(), r.graph.problematic_indices().size());
  std::printf("  expected benefit: %s (%s) -> sorted report + JSON\n",
              format_seconds(r.benefit.total).c_str(),
              format_percent(r.fraction_of_exec(r.benefit.total)).c_str());
}

void figure2_walkthrough() {
  print_header("Figure 2 — identifying a problematic synchronization",
               "SC'19 Figure 2");

  // The figure's program: an async D2H into CPU_Mem, a synchronize, then
  // (in one variant) a read of CPU_Mem. Two variants, two verdicts.
  auto run_variant = [](bool access_data) {
    auto cpu_mem = std::make_shared<gpusim::HostBuffer<float>>(4096);
    ffm::Workload w;
    w.name = access_data ? "fig2_with_access" : "fig2_without_access";
    w.device = gpusim::DeviceConfig{};
    w.body = [cpu_mem, access_data] {
      DIOG_APP_FRAME("fig2_main", "fig2.cu", 1);
      void* dev = nullptr;
      void* pinned = nullptr;
      (void)gpusim::cudaMalloc(&dev, cpu_mem->size_bytes());
      (void)gpusim::cudaMallocHost(&pinned, cpu_mem->size_bytes());
      gpusim::KernelDesc k;
      k.name = "producer";
      k.duration = ms(2);
      (void)gpusim::cudaLaunchKernel(k);
      // Step 1's capture point: the D2H transfer declares CPU_Mem as a
      // range GPU computation may change.
      (void)gpusim::cudaMemcpyAsync(pinned, dev, cpu_mem->size_bytes(),
                                    hooks::MemcpyKind::kDeviceToHost);
      (void)gpusim::cudaMemcpy(cpu_mem->data(), dev, cpu_mem->size_bytes(),
                               hooks::MemcpyKind::kDeviceToHost);
      gpusim::cpu_work(us(80));
      if (access_data) {
        DIOG_APP_FRAME("consume", "fig2.cu", 21);
        volatile float v = (*cpu_mem)[0];  // step 2's load
        (void)v;
      }
      (void)gpusim::cudaFreeHost(pinned);
      (void)gpusim::cudaFree(dev);
    };

    const ffm::ToolConfig cfg;
    const ffm::Stage1Result s1 = ffm::run_stage1(w, cfg);
    const ffm::Stage3Result s3 = ffm::run_stage3(w, cfg, s1);
    std::printf("\nvariant: %s\n", w.name.c_str());
    for (const auto& c : s3.syncs) {
      std::printf("  sync op #%llu: %s",
                  static_cast<unsigned long long>(c.op_index),
                  c.required ? "REQUIRED for correctness" : "unnecessary");
      if (c.required && c.access_stack.leaf() != nullptr) {
        std::printf("  (step 3: access stored at %s)",
                    c.access_stack.leaf()->pretty().c_str());
      }
      std::printf("\n");
    }
  };

  run_variant(true);
  std::printf("  [step 1: CPU_Mem captured from the D2H transfer;\n"
              "   step 2: the load after the sync faults and is logged;\n"
              "   step 3: the instruction + stack are stored]\n");
  run_variant(false);
  std::printf("  [no access follows: every sync protecting the range is\n"
              "   unnecessary — the Figure 2 decision, inverted]\n");
}

}  // namespace

int main() {
  figure1_walkthrough();
  figure2_walkthrough();
  return 0;
}
