// Ablation — single-run adaptive instrumentation (Paradyn's model, §2.1)
// vs FFM's multi-run model.
//
// "Operations that are impactful can be missed if the operation
// completes before Paradyn determines the operation is important."
//
// Two workload shapes decide the comparison:
//   * steady loops (Rodinia-like): every site repeats, single-run
//     coverage is nearly perfect — one run is cheaper, and this is the
//     regime Paradyn was designed for;
//   * one-shot problems (an initialization phase that blocks for tens of
//     milliseconds exactly twice): the site never crosses the promotion
//     threshold, the detail is gone, and no amount of post-processing
//     brings it back. FFM's stage 1 records the site and stage 2 traces
//     every occurrence on the next run.
#include "bench_common.h"
#include "core/single_run.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "gpusim/api.h"
#include "trace/callstack.h"

using namespace diog;
using namespace diog::bench;
using gpusim::KernelDesc;

namespace {

ffm::Workload startup_heavy() {
  ffm::Workload w;
  w.name = "startup_heavy";
  w.device = gpusim::DeviceConfig{};
  w.body = [] {
    DIOG_APP_FRAME("main", "init.cu", 1);
    KernelDesc big;
    big.name = "init_kernel";
    big.duration = ms(40);
    for (int site = 0; site < 2; ++site) {
      (void)gpusim::cudaLaunchKernel(big);
      DIOG_APP_FRAME("init", "init.cu", 14);
      (void)gpusim::cudaDeviceSynchronize();  // happens ONCE per site
    }
    for (int i = 0; i < 200; ++i) {
      KernelDesc k;
      k.name = "k";
      k.duration = us(200);
      (void)gpusim::cudaLaunchKernel(k);
      DIOG_APP_FRAME("tail", "init.cu", 28);
      (void)gpusim::cudaStreamSynchronize(gpusim::kDefaultStream);
    }
  };
  return w;
}

void compare(const ffm::Workload& w) {
  const ffm::ToolConfig cfg;

  // Single-run adaptive instrumentation.
  const ffm::SingleRunResult sr =
      ffm::run_single_run_analysis(w, cfg, {});

  // FFM: stage 1 discovers, stage 2 traces everything on a second run.
  const ffm::Stage1Result s1 = ffm::run_stage1(w, cfg);
  const ffm::Stage2Result s2 = ffm::run_stage2(w, cfg, s1);
  Duration ffm_wait{0};
  std::size_t ffm_syncs = 0;
  for (const ffm::OpRecord& op : s2.ops) {
    if (op.performed_sync) {
      ++ffm_syncs;
      ffm_wait += op.sync_wait;
    }
  }
  Duration sr_wait{0};
  for (const ffm::OpRecord& op : sr.ops) sr_wait += op.sync_wait;

  std::printf("\n--- %s ---\n", w.name.c_str());
  std::printf("%-34s %14s %14s\n", "", "single-run", "FFM (2 runs)");
  std::printf("%-34s %14zu %14zu\n", "sync occurrences traced in detail",
              sr.ops.size(), ffm_syncs);
  std::printf("%-34s %14zu %14d\n", "occurrences missed",
              sr.occurrences_missed, 0);
  std::printf("%-34s %14s %14s\n", "blocked time captured",
              format_seconds(sr_wait).c_str(),
              format_seconds(ffm_wait).c_str());
  std::printf("%-34s %14s %14s\n", "blocked time LOST",
              format_seconds(sr.missed_wait).c_str(),
              format_seconds(Duration{0}).c_str());
  std::printf("%-34s %13.1f%% %13.1f%%\n", "coverage",
              sr.coverage() * 100.0, 100.0);
}

}  // namespace

int main() {
  print_header("Ablation — single-run (Paradyn-style) vs multi-run (FFM)",
               "SC'19 §2.1");

  apps::RodiniaGaussianConfig rodinia_cfg;
  rodinia_cfg.matrix_dim = 128;
  compare(apps::make_rodinia_gaussian(rodinia_cfg));

  compare(startup_heavy());

  std::printf(
      "\nSteady loops forgive the single-run model; one-shot problems do\n"
      "not. The startup workload's ~80 ms of blocking never crosses the\n"
      "promotion threshold and is simply absent from the single-run\n"
      "trace — the gap that motivated FFM's multi-run design.\n");
  return 0;
}
