// Infrastructure microbenchmarks (google-benchmark): the per-event costs
// that determine how much real time the tool spends per simulated run —
// content hashing throughput, hook dispatch, frame interning, stack
// keys, JSON round-trips, and the expected-benefit pass on large graphs.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/benefit.h"
#include "gpusim/api.h"
#include "gpusim/runtime.h"
#include "hashing/content_hash.h"
#include "hashing/dedup_store.h"
#include "hooks/hook_table.h"
#include "json/json.h"
#include "support/rng.h"
#include "trace/callstack.h"

namespace {

using namespace diog;

std::vector<std::byte> random_bytes(std::size_t n) {
  Rng rng(42);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

void BM_Hash64(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::hash64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Fnv1a(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::fnv1a64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(4096)->Arg(1 << 20);

void BM_DedupObserve(benchmark::State& state) {
  hash::DedupStore store;
  const auto data = random_bytes(4096);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.observe(
        data, hash::TransferDirection::kHostToDevice, id++));
  }
}
BENCHMARK(BM_DedupObserve);

void BM_HookDispatchNoProbe(benchmark::State& state) {
  hooks::HookTable table;
  VirtualClock clock;
  hooks::OpInfo info;
  for (auto _ : state) {
    const auto id =
        table.fire_entry(hooks::Fn::kCudaFree, info, clock, 1, false);
    table.fire_exit(hooks::Fn::kCudaFree, id, TimePoint{0}, info, clock, 1,
                    false);
  }
}
BENCHMARK(BM_HookDispatchNoProbe);

void BM_HookDispatchWithProbe(benchmark::State& state) {
  hooks::HookTable table;
  VirtualClock clock;
  hooks::OpInfo info;
  std::uint64_t count = 0;
  hooks::Probe p;
  p.on_entry = [&](const hooks::HookContext&) { ++count; };
  p.on_exit = [&](const hooks::HookContext&) { ++count; };
  table.attach(hooks::Fn::kCudaFree, p);
  for (auto _ : state) {
    const auto id =
        table.fire_entry(hooks::Fn::kCudaFree, info, clock, 1, false);
    table.fire_exit(hooks::Fn::kCudaFree, id, TimePoint{0}, info, clock, 1,
                    false);
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_HookDispatchWithProbe);

void BM_RuntimeApiCall(benchmark::State& state) {
  gpusim::Runtime rt;
  gpusim::RuntimeScope scope(rt);
  for (auto _ : state) {
    int dev = 0;
    benchmark::DoNotOptimize(gpusim::cudaGetDevice(&dev));
  }
}
BENCHMARK(BM_RuntimeApiCall);

void BM_StackCapture(benchmark::State& state) {
  trace::ScopedFrame f1("main", "app.cc", 1);
  trace::ScopedFrame f2("update", "app.cc", 2);
  trace::ScopedFrame f3("solve", "app.cc", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::CallContext::current().capture());
  }
}
BENCHMARK(BM_StackCapture);

void BM_StackKeys(benchmark::State& state) {
  trace::ScopedFrame f1("main", "app.cc", 1);
  trace::ScopedFrame f2("storage<float>::deallocate", "t.h", 31);
  const trace::StackTrace st = trace::CallContext::current().capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.exact_key());
    benchmark::DoNotOptimize(st.folded_key());
  }
}
BENCHMARK(BM_StackKeys);

void BM_JsonRoundTrip(benchmark::State& state) {
  json::Value v;
  json::Array ops;
  for (int i = 0; i < 100; ++i) {
    json::Object op;
    op["index"] = i;
    op["api_name"] = "cudaFree";
    op["t_enter_ns"] = i * 1000;
    op["sync_wait_ns"] = 12345;
    ops.emplace_back(std::move(op));
  }
  v["ops"] = std::move(ops);
  const std::string text = v.dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_ExpectedBenefit(benchmark::State& state) {
  Rng rng(7);
  std::vector<ffm::Node> nodes;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    ffm::Node node;
    const auto roll = rng.next_below(3);
    node.type = roll == 0   ? ffm::NType::kCWork
                : roll == 1 ? ffm::NType::kCLaunch
                            : ffm::NType::kCWait;
    node.duration = us(rng.next_in(1, 1000));
    if (node.type == ffm::NType::kCWait && rng.next_bool(0.4)) {
      node.problem = ffm::ProblemType::kUnnecessarySync;
    }
    nodes.push_back(node);
  }
  const ffm::ExecutionGraph g(std::move(nodes), secs(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ffm::expected_benefit(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ExpectedBenefit)->Arg(1000)->Arg(10000);

}  // namespace
