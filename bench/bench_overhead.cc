// §5.3 — the cost of running Diogenes.
//
// "The multiple runs and the use of high cost instrumentation result in
// data collection times between 8x (cumf_als) and 20x (cuIBM) of the
// application's original execution time."
//
// For each application this bench reports the virtual execution time of
// every collection stage and the total collection cost relative to the
// baseline run. Stage 3 dominates: its load/store instrumentation
// dilates all application CPU work — the very reason stage 4 re-measures
// sync-use timing under light instrumentation.
#include "bench_common.h"

int main() {
  using namespace diog;
  using namespace diog::bench;

  print_header("Data-collection overhead per stage", "SC'19 §5.3");

  std::printf("\n%-10s %10s %10s %10s %10s %10s %9s\n", "App", "native",
              "stage1", "stage2", "stage3", "stage4", "total");
  for (const auto& app : apps::all_apps()) {
    const Duration native = ffm::run_uninstrumented(app.pathological);
    ffm::Diogenes tool(app.pathological);
    const ffm::AnalysisResult r = tool.analyze();
    std::printf("%-10s %10s %10s %10s %10s %10s %8.1fx\n",
                app.name.c_str(), format_seconds(native).c_str(),
                format_seconds(r.s1.exec_time).c_str(),
                format_seconds(r.s2.exec_time).c_str(),
                format_seconds(r.s3.exec_time).c_str(),
                format_seconds(r.s4.exec_time).c_str(),
                r.overhead_factor);
  }
  std::printf("\n[paper: total collection cost 8x (cumf_als) to 20x (cuIBM)\n"
              " of native execution; stage granularity not reported]\n");
  std::printf("\nWhy the split matters: stage 3's hashing + load/store\n"
              "instrumentation makes its timings useless for sync-use\n"
              "analysis; stage 4 repeats the memory tracing at ~1.3x so\n"
              "FirstUseTime is measured on a nearly-native schedule.\n");
  return 0;
}
