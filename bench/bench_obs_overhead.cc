// Self-telemetry overhead: is the observer honest about its own cost?
//
// The paper's central theme is that measurement perturbs the thing
// measured; this bench turns that lens on the obs subsystem itself. It
// runs the bench_fig1_stages workload (the full stage 1-4 collection
// pipeline on cumf_als) with telemetry disabled and enabled and
// compares host wall time. The acceptance bar is <5% enabled overhead;
// in a -DDIOG_OBS=OFF build both timings run the compiled-out no-ops
// and the delta reads ~0.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "core/stage4_syncuse.h"
#include "obs/telemetry.h"

using namespace diog;
using namespace diog::bench;

namespace {

// One full collection pipeline: the workload bench_fig1_stages walks.
void run_pipeline() {
  apps::CumfAlsConfig app_cfg;
  app_cfg.iterations = 20;
  const ffm::Workload w = apps::make_cumf_als(app_cfg);
  const ffm::ToolConfig tool_cfg;
  const ffm::Stage1Result s1 = ffm::run_stage1(w, tool_cfg);
  const ffm::Stage2Result s2 = ffm::run_stage2(w, tool_cfg, s1);
  const ffm::Stage3Result s3 = ffm::run_stage3(w, tool_cfg, s1);
  const ffm::Stage4Result s4 = ffm::run_stage4(w, tool_cfg, s1);
  const ffm::AnalysisResult r =
      ffm::run_analysis_stage(w.name, s1, s2, s3, s4, tool_cfg);
  if (r.graph.size() == 0) std::printf("unexpected empty graph\n");
}

double time_pipeline_ms(int reps, bool telemetry_on) {
  auto& t = obs::Telemetry::global();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    // Fresh session per rep so span/metric accumulation can't grow the
    // enabled runs' cost across iterations.
    t.reset();
    t.set_enabled(telemetry_on);
    const auto start = std::chrono::steady_clock::now();
    run_pipeline();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  t.set_enabled(true);
  t.reset();
  return best;
}

}  // namespace

int main() {
  print_header("Self-telemetry overhead on the FFM pipeline",
               "bench_fig1_stages workload, obs registry on vs off");

  constexpr int kWarmup = 2;
  constexpr int kReps = 7;
  std::printf("\ncompiled in: %s\n", obs::kCompiledIn ? "yes" : "no (DIOG_OBS=OFF)");

  // Warm caches and the app's lazily built state before timing.
  time_pipeline_ms(kWarmup, /*telemetry_on=*/false);

  const double off_ms = time_pipeline_ms(kReps, /*telemetry_on=*/false);
  const double on_ms = time_pipeline_ms(kReps, /*telemetry_on=*/true);
  const double overhead_pct =
      off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;

  std::printf("pipeline wall time, telemetry off: %8.3f ms (best of %d)\n",
              off_ms, kReps);
  std::printf("pipeline wall time, telemetry on:  %8.3f ms (best of %d)\n",
              on_ms, kReps);
  std::printf("enabled overhead: %+.2f%%  (bar: <5%%)\n", overhead_pct);

  if (!obs::kCompiledIn) {
    std::printf("DIOG_OBS=OFF build: both runs execute compiled-out no-ops; "
                "any delta is timing noise.\n");
    return 0;
  }
  if (overhead_pct < 5.0) {
    std::printf("PASS: the registry stays under the 5%% bar\n");
    return 0;
  }
  std::printf("FAIL: telemetry overhead exceeds 5%%\n");
  return 1;
}
