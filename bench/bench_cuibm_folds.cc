// Figure 7 — the cuIBM overview display and the expansion of the
// cudaFree fold into template-folded functions.
//
// Left pane: groupings sorted by recoverable time ("Fold on cudaFree",
// sequences, ...). Right pane: the cudaFree fold expanded by demangled
// base function name with template parameters discarded — Thrust's
// contiguous_storage instantiations collapse into one entry, annotated
// "Conditionally unnecessary" because removing an implicit sync is only
// safe under conditions the user must check.
#include "bench_common.h"

int main() {
  using namespace diog;
  using namespace diog::bench;

  print_header("Figure 7 — cuIBM overview + cudaFree fold expansion",
               "SC'19 Figure 7");

  ffm::Diogenes tool(apps::make_cuibm());
  const ffm::AnalysisResult r = tool.analyze();

  // --- Left pane: the overview -------------------------------------------
  std::printf("\n%s", ffm::render_overview(r, 6).c_str());
  std::printf("[paper overview: 421.716s (22.52%%) Fold on cudaFree;\n"
              " 150.353s (8.03%%) Sequence...; 136.150s (7.27%%) Fold on\n"
              " cudaDeviceSynchronize; 80.938s (4.32%%) Fold on\n"
              " cudaMemcpyAsync]\n");

  // --- Right pane: expansion of the cudaFree fold --------------------------
  for (const ffm::Group& fold : r.folds) {
    if (fold.title != "Fold on cudaFree") continue;
    std::printf("\nExpansion of Problem\n%s",
                ffm::render_fold_expansion(r, fold).c_str());
    std::printf(
        "[paper expansion: 202.985s (10.84%%)\n"
        " thrust::detail::contiguous_storage<...> — Conditionally\n"
        " unnecessary; 113.375s (6.06%%) thrust::pair<...>; 65.258s\n"
        " (3.49%%) void cusp::system::detail::generic::multiply<...>]\n");
  }

  // The issue the paper narrates: one template function accounting for a
  // double-digit share of execution via millions of hidden frees.
  std::printf("\nNarrative check (§5.1): the top expansion entry is the\n"
              "Thrust temporary-storage template — the single source-level\n"
              "fix (a reusing pool) that recovered 17.6%% of execution.\n");
  return 0;
}
