// §2.2 / Figure 3 — what the vendor interface misses and binary
// instrumentation sees.
//
// A synthetic workload issues one synchronization of every class the
// paper enumerates:
//   explicit      cudaDeviceSynchronize, cudaStreamSynchronize
//   implicit      cudaMemcpy (blocking copy), cudaFree
//   conditional   cudaMemcpyAsync D2H -> pageable, cudaMemset -> managed
//   private API   cuPrivSync, cuPrivMemFree (vendor-library internals)
//
// Two observers watch the same run: a CUPTI-like subscriber (what
// NVProf/HPCToolkit build on) and a probe on the internal wait funnel
// that stage-1 discovery finds. The table counts the synchronizations
// each observer reported.
#include <cstdio>

#include "core/stage1_baseline.h"
#include "cuptilike/cupti.h"
#include "gpusim/api.h"
#include "gpusim/blaslike.h"
#include "gpusim/host_buffer.h"
#include "gpusim/private_api.h"
#include "support/strings.h"

using namespace diog;
using gpusim::KernelDesc;
using hooks::Fn;
using hooks::MemcpyKind;

namespace {

struct SyncClass {
  const char* name;
  std::function<void()> issue;
};

void busy_kernel() {
  KernelDesc k;
  k.name = "busy";
  k.duration = ms(5);
  (void)gpusim::cudaLaunchKernel(k);
}

}  // namespace

int main() {
  std::printf(
      "================================================================\n"
      "Synchronization coverage — CUPTI-like vs internal-wait probe\n"
      "Reproduces: SC'19 §2.2 + Figure 3\n"
      "================================================================\n");

  // First: the stage-1 discovery experiment itself.
  const Fn wait_fn = ffm::discover_wait_fn(gpusim::DeviceConfig{});
  std::printf("\nwait-function discovery (never-completing kernel + known\n"
              "synchronous call): CPU blocked inside '%s'\n",
              std::string(hooks::fn_name(wait_fn)).c_str());

  std::printf("\n%-44s %14s %14s\n", "synchronization class",
              "CUPTI records", "probe records");
  std::printf("%s\n", std::string(74, '-').c_str());

  void* dev = nullptr;
  void* managed = nullptr;
  void* pinned = nullptr;
  auto pageable = std::make_shared<gpusim::HostBuffer<char>>(1 << 16);

  const std::vector<SyncClass> classes = {
      {"explicit: cudaDeviceSynchronize",
       [] {
         busy_kernel();
         (void)gpusim::cudaDeviceSynchronize();
       }},
      {"explicit: cudaStreamSynchronize",
       [] {
         busy_kernel();
         (void)gpusim::cudaStreamSynchronize(gpusim::kDefaultStream);
       }},
      {"implicit: cudaMemcpy (blocking copy)",
       [&] {
         busy_kernel();
         char buf[256];
         (void)gpusim::cudaMemcpy(dev, buf, 256, MemcpyKind::kHostToDevice);
       }},
      {"implicit: cudaFree",
       [&] {
         busy_kernel();
         void* tmp = nullptr;
         (void)gpusim::cudaMalloc(&tmp, 64);
         (void)gpusim::cudaFree(tmp);
       }},
      {"conditional: cudaMemcpyAsync D2H -> pageable",
       [&] {
         busy_kernel();
         (void)gpusim::cudaMemcpyAsync(pageable->data(), dev, 1 << 16,
                                       MemcpyKind::kDeviceToHost);
       }},
      {"control: cudaMemcpyAsync D2H -> pinned (no sync)",
       [&] {
         busy_kernel();
         (void)gpusim::cudaMemcpyAsync(pinned, dev, 1 << 16,
                                       MemcpyKind::kDeviceToHost);
       }},
      {"conditional: cudaMemset -> managed",
       [&] {
         busy_kernel();
         (void)gpusim::cudaMemset(managed, 0, 4096);
       }},
      {"private API: cuPrivSync (vendor library)",
       [] {
         busy_kernel();
         gpusim::priv::cuPrivSync();
       }},
      {"private API: cuPrivMemFree (vendor library)",
       [] {
         void* tmp = gpusim::priv::cuPrivMemAlloc(64);
         busy_kernel();
         gpusim::priv::cuPrivMemFree(tmp);
       }},
  };

  for (const SyncClass& sc : classes) {
    gpusim::Runtime rt;
    cupti::Subscriber sub;
    sub.attach(rt);

    // The binary-instrumentation observer: a probe on the discovered
    // wait funnel counting real blocking events.
    int probe_syncs = 0;
    hooks::Probe probe;
    probe.on_exit = [&](const hooks::HookContext& ctx) {
      if (ctx.info->sync_wait > Duration{0}) ++probe_syncs;
    };
    rt.hooks().attach(wait_fn, probe);

    {
      gpusim::RuntimeScope scope(rt);
      (void)gpusim::cudaMalloc(&dev, 1 << 16);
      (void)gpusim::cudaMallocManaged(&managed, 4096);
      (void)gpusim::cudaMallocHost(&pinned, 1 << 16);
      probe_syncs = 0;  // ignore setup
      sc.issue();
    }

    int cupti_syncs = 0;
    for (const auto& a : sub.activities()) {
      if (a.kind == gpusim::CuptiActivity::Kind::kSynchronization) {
        ++cupti_syncs;
      }
    }
    std::printf("%-44s %14d %14d\n", sc.name, cupti_syncs, probe_syncs);
  }

  std::printf(
      "\nReading the table: every class blocks the CPU (probe column),\n"
      "but the vendor interface reports synchronization records only\n"
      "for the explicit calls — implicit, conditional, and private-API\n"
      "waits are invisible to CUPTI-based tools (pinned-destination\n"
      "async copies genuinely do not block, hence 0/0 before cleanup).\n");
  return 0;
}
