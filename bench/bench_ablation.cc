// Ablations of the design choices DESIGN.md calls out.
//
//   A. Benefit model: the paper's upper-bound GPU-idle estimate
//      (min(wait, CPU work to the next sync)) vs the naive
//      "benefit = consumption" model, judged against the measured truth
//      (pathological minus fixed execution time) for all four apps.
//   B. Misplaced-sync handling: Figure 5's uncapped FirstUseTime return
//      vs the physically-capped variant, on a graph where they diverge.
//   C. Stage split: measuring FirstUseTime under stage-3's heavy
//      instrumentation vs stage-4's light re-run — why FFM pays for a
//      fourth execution.
#include "bench_common.h"
#include "core/stage1_baseline.h"
#include "core/stage4_syncuse.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"

int main() {
  using namespace diog;
  using namespace diog::bench;
  using ffm::Node;

  // --- A: benefit model vs naive consumption --------------------------------
  print_header("Ablation A — expected-benefit model vs naive consumption",
               "SC'19 §3.5 (critical-path insight)");
  std::printf("\n%-10s %14s %14s %14s\n", "App", "naive(consumed)",
              "Figure-5 est", "actual fix");
  for (const auto& app : apps::all_apps()) {
    ffm::Diogenes tool(app.pathological);
    const ffm::AnalysisResult r = tool.analyze();

    Duration naive{0};
    for (const std::size_t i : r.graph.problematic_indices()) {
      naive += r.graph.nodes()[i].duration;
    }
    const Duration native = ffm::run_uninstrumented(app.pathological);
    const Duration actual = native - ffm::run_uninstrumented(app.fixed);

    std::printf("%-10s %13.1f%% %13.1f%% %13.1f%%\n", app.name.c_str(),
                r.fraction_of_exec(naive) * 100.0,
                r.fraction_of_exec(r.benefit.total) * 100.0,
                100.0 * static_cast<double>(actual.count()) /
                    static_cast<double>(native.count()));
  }
  std::printf("\nRodinia is the decisive row: naive pricing claims nearly\n"
              "the whole run is recoverable; the model (and reality) say\n"
              "~2%%.\n");

  // --- B: misplaced-sync cap -------------------------------------------------
  print_header("Ablation B — misplaced sync: paper-faithful vs capped",
               "SC'19 Figure 5 (MisplacedSynchronization)");
  {
    std::vector<Node> nodes(2);
    nodes[0].type = ffm::NType::kCWait;
    nodes[0].duration = ms(3);
    nodes[0].problem = ffm::ProblemType::kMisplacedSync;
    nodes[0].first_use_time = ms(10);  // first use far beyond the wait
    nodes[1].type = ffm::NType::kCWait;
    const ffm::ExecutionGraph g(std::move(nodes), ms(3));

    ffm::BenefitOptions paper_faithful;
    paper_faithful.cap_misplaced_at_duration = false;
    ffm::BenefitOptions capped;
    capped.cap_misplaced_at_duration = true;

    std::printf("\nwait = 3 ms, FirstUseTime = 10 ms\n");
    std::printf("  paper-faithful estimate (uncapped): %s\n",
                format_seconds(ffm::expected_benefit(g, paper_faithful).total)
                    .c_str());
    std::printf("  capped estimate:                    %s\n",
                format_seconds(ffm::expected_benefit(g, capped).total)
                    .c_str());
    std::printf("Moving a 3 ms wait cannot save 10 ms: the pseudocode's\n"
                "uncapped return overestimates whenever the first use\n"
                "lags far behind a short wait. This library defaults to\n"
                "the capped variant.\n");
  }

  // --- C: why stage 4 exists --------------------------------------------------
  print_header("Ablation C — FirstUseTime under heavy vs light runs",
               "SC'19 §3.3/§3.4 (stage split rationale)");
  {
    auto out = std::make_shared<gpusim::HostBuffer<float>>(256 * 1024);
    ffm::Workload w;
    w.name = "first_use_probe";
    w.device = gpusim::DeviceConfig{};
    w.body = [out] {
      void* dev = nullptr;
      (void)gpusim::cudaMalloc(&dev, out->size_bytes());
      gpusim::KernelDesc k;
      k.name = "k";
      k.duration = ms(2);
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                               hooks::MemcpyKind::kDeviceToHost);
      gpusim::cpu_work(ms(4));  // TRUE first-use gap: 4 ms
      volatile float v = (*out)[0];
      (void)v;
      (void)gpusim::cudaFree(dev);
    };

    const ffm::ToolConfig cfg;
    const ffm::Stage1Result s1 = ffm::run_stage1(w, cfg);

    // Stage 4 as shipped (light instrumentation).
    const ffm::Stage4Result light = ffm::run_stage4(w, cfg, s1);

    // The counterfactual: take first-use timing from the heavy stage-3
    // configuration (what a 4-stage-in-3-runs design would do).
    ffm::ToolConfig heavy_cfg = cfg;
    heavy_cfg.stage4_cpu_dilation = cfg.stage3_cpu_dilation;
    heavy_cfg.stage4_probe_cost = cfg.stage3_probe_cost;
    const ffm::Stage4Result heavy = ffm::run_stage4(w, heavy_cfg, s1);

    std::printf("\ntrue first-use gap:                      %s\n",
                format_seconds(ms(4)).c_str());
    if (!light.uses.empty()) {
      std::printf("measured in a light stage-4 run:         %s\n",
                  format_seconds(light.uses[0].first_use_time).c_str());
    }
    if (!heavy.uses.empty()) {
      std::printf("measured under stage-3-weight collection: %s\n",
                  format_seconds(heavy.uses[0].first_use_time).c_str());
    }
    std::printf("\nHeavy instrumentation dilates the very gap being\n"
                "measured — the reason FFM pays for a separate, lightly\n"
                "instrumented fourth run.\n");
  }
  return 0;
}
