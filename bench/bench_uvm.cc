// Extension bench — unified-memory transfer analysis (paper §5.3 future
// work: "we are looking at methods to expand Diogenes to directly detect
// problems with unified memory transfers").
//
// The UVM stencil workload's halo buffer ping-pongs between the CPU and
// the GPU every timestep. Nothing in the vendor interface describes the
// fault stalls; baseline Diogenes (with the migration path untraced) is
// equally blind — the extension instruments the driver's internal
// migration function directly and prices the thrash.
#include "baselines/profilers.h"
#include "bench_common.h"
#include "core/uvm_analysis.h"

int main() {
  using namespace diog;
  using namespace diog::bench;

  print_header("Unified-memory thrash detection (extension)",
               "SC'19 §5.3 future work");

  apps::UvmStencilConfig cfg;
  const ffm::Workload path = apps::make_uvm_stencil(cfg);
  const ffm::Workload fixed = apps::make_uvm_stencil(cfg, true);

  const Duration native = ffm::run_uninstrumented(path);
  const Duration fixed_time = ffm::run_uninstrumented(fixed);
  std::printf("\npathological: %s   staged-halo fix: %s   actual benefit: "
              "%s (%.1f%%)\n",
              format_seconds(native).c_str(),
              format_seconds(fixed_time).c_str(),
              format_seconds(native - fixed_time).c_str(),
              100.0 * static_cast<double>((native - fixed_time).count()) /
                  static_cast<double>(native.count()));

  // What a consumption profiler sees: nothing attributable.
  const baselines::ProfileResult nv = baselines::run_nvprof_like(path);
  std::printf("\nnvprof_like's view of the pathological run:\n%s",
              baselines::render_profile(nv, 5).c_str());
  std::printf("(the fault stalls appear in no API call: the run just "
              "looks slow)\n");

  // The extension's view.
  const ffm::UvmAnalysis a = ffm::analyze_unified_memory(path);
  std::printf("\n%s", ffm::render_uvm(a).c_str());
  std::printf("\nestimate vs actual: %s vs %s (%.0f%% accuracy)\n",
              format_seconds(a.estimated_benefit).c_str(),
              format_seconds(native - fixed_time).c_str(),
              accuracy(a.estimated_benefit, native - fixed_time) * 100.0);

  // And confirmation that the fix eliminates the thrash.
  const ffm::UvmAnalysis af = ffm::analyze_unified_memory(fixed);
  std::printf("\nafter the fix: %zu migrations, estimated benefit %s\n",
              af.migrations.size(),
              format_seconds(af.estimated_benefit).c_str());
  return 0;
}
