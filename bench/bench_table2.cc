// Table 2 — "Comparison of cuda function call profiling results between
// Diogenes, HPCToolkit, and NVProf."
//
// For each application, three tools run:
//   nvprof_like      consumption per API call via the CUPTI-like
//                    interface (crashes on cuIBM's call volume, as the
//                    real NVProf did);
//   hpctoolkit_like  sampling-based consumption (systematically lower);
//   Diogenes         expected BENEFIT per API call.
// The table shows the paper's headline: consumption and benefit disagree
// wildly in both magnitude and rank (e.g. cudaDeviceSynchronize in
// cumf_als: >40% consumed, ~0% recoverable), and Diogenes reports
// nothing at all for calls that neither synchronize nor transfer
// (cudaMalloc, cudaLaunchKernel).
#include <map>
#include <set>

#include "baselines/profilers.h"
#include "bench_common.h"

int main() {
  using namespace diog;
  using namespace diog::bench;

  print_header(
      "Table 2 — consumption (NVProf/HPCToolkit) vs benefit (Diogenes)",
      "SC'19 Table 2 + §5.2");

  for (const auto& app : apps::all_apps()) {
    std::printf("\n--- %s ---\n", app.name.c_str());

    const baselines::ProfileResult nv =
        baselines::run_nvprof_like(app.pathological);
    const baselines::ProfileResult hp =
        baselines::run_hpctoolkit_like(app.pathological);
    ffm::Diogenes tool(app.pathological);
    const ffm::AnalysisResult r = tool.analyze();
    const auto savings = r.api_savings();

    // Row set: union of the top profiler entries and Diogenes' list.
    std::set<std::string> api_names;
    if (!nv.crashed) {
      for (std::size_t i = 0; i < nv.entries.size() && i < 7; ++i) {
        api_names.insert(nv.entries[i].api_name);
      }
    }
    for (std::size_t i = 0; i < hp.entries.size() && i < 7; ++i) {
      api_names.insert(hp.entries[i].api_name);
    }
    for (const auto& s : savings) {
      api_names.insert(std::string(hooks::fn_name(s.api)));
    }

    std::printf("%-24s | %-22s | %-22s | %-22s\n", "Operation",
                "NVProf time (% , pos)", "HPCToolkit time (%, pos)",
                "Diogenes savings (%, pos)");
    std::printf("%s\n", std::string(98, '-').c_str());
    for (const std::string& name : api_names) {
      std::string nv_cell = nv.crashed ? "Profiler Crashed" : "-";
      if (!nv.crashed) {
        if (const auto* e = nv.find(name)) {
          nv_cell = format_seconds(e->time) + " (" +
                    format_percent(e->fraction_of_exec, 1) + ", " +
                    std::to_string(e->position) + ")";
        }
      }
      std::string hp_cell = "-";
      if (const auto* e = hp.find(name)) {
        hp_cell = format_seconds(e->time) + " (" +
                  format_percent(e->fraction_of_exec, 1) + ", " +
                  std::to_string(e->position) + ")";
      }
      std::string di_cell = "-";
      int pos = 1;
      for (const auto& s : savings) {
        if (std::string(hooks::fn_name(s.api)) == name) {
          di_cell = format_seconds(s.savings) + " (" +
                    format_percent(r.fraction_of_exec(s.savings), 1) +
                    ", " + std::to_string(pos) + ")";
          break;
        }
        ++pos;
      }
      std::printf("%-24s | %-22s | %-22s | %-22s\n", name.c_str(),
                  nv_cell.c_str(), hp_cell.c_str(), di_cell.c_str());
    }
    if (nv.crashed) {
      std::printf("  [nvprof_like: %s — the paper's NVProf also crashed "
                  "on cuIBM]\n",
                  nv.crash_reason.c_str());
    }
  }

  // §5.2's verification claim: removing only the cudaDeviceSynchronize
  // calls from cumf_als should change execution time by ~nothing.
  print_header("§5.2 verification — cumf_als without deviceSynchronize",
               "SC'19 §5.2 (\"no impact on the execution time\")");
  {
    apps::CumfAlsConfig cfg;
    const Duration base =
        ffm::run_uninstrumented(apps::make_cumf_als(cfg));
    apps::CumfAlsConfig stripped_cfg = cfg;
    stripped_cfg.omit_device_syncs = true;
    const Duration stripped =
        ffm::run_uninstrumented(apps::make_cumf_als(stripped_cfg));

    ffm::Diogenes tool(apps::make_cumf_als(cfg));
    const ffm::AnalysisResult r = tool.analyze();
    Duration sync_savings{0};
    for (const auto& s : r.api_savings()) {
      if (s.api == hooks::Fn::kCudaDeviceSynchronize) {
        sync_savings = s.savings;
      }
    }
    const Duration actual = base - stripped;
    std::printf("cumf_als exec: %s  |  with deviceSynchronize stripped: %s\n",
                format_seconds(base).c_str(),
                format_seconds(stripped).c_str());
    std::printf("actual change: %s (%.2f%%)  |  Diogenes predicted: %s "
                "(%.2f%%)\n",
                format_seconds(actual).c_str(),
                100.0 * static_cast<double>(actual.count()) /
                    static_cast<double>(base.count()),
                format_seconds(sync_savings).c_str(),
                r.fraction_of_exec(sync_savings) * 100.0);
    std::printf("[paper: 745s consumed by the calls, ~1s (0.07%%) "
                "recoverable — verified no measurable impact]\n");
  }
  return 0;
}
