// Figure 4 — "Example of the different outcomes from removing a
// problematic synchronization."
//
// Two hand-built execution graphs remove a CWait of IDENTICAL duration.
// In the first, ample CPU work follows before the next synchronization:
// the removal pays in full. In the second, the next wait grows to absorb
// almost everything. A consumption-based tool prices both waits the
// same; the expected-benefit algorithm (Figure 5) tells them apart.
//
// Also includes the naive-model comparison (the ablation DESIGN.md calls
// out): "benefit = wait duration" vs the paper's min(wait, est-max-GPU-
// idle) upper-bound estimate.
#include <cstdio>

#include "core/benefit.h"
#include "support/strings.h"

using namespace diog;
using namespace diog::ffm;

namespace {

Node work(Duration d) {
  Node n;
  n.type = NType::kCWork;
  n.duration = d;
  return n;
}
Node launch(Duration d) {
  Node n;
  n.type = NType::kCLaunch;
  n.duration = d;
  return n;
}
Node wait_node(Duration d, ProblemType p = ProblemType::kNone) {
  Node n;
  n.type = NType::kCWait;
  n.duration = d;
  n.problem = p;
  return n;
}

ExecutionGraph make(std::vector<Node> nodes) {
  Duration total{0};
  for (const Node& n : nodes) total += n.duration;
  return ExecutionGraph(std::move(nodes), total);
}

void show(const char* title, const ExecutionGraph& g) {
  std::printf("\n%s\n", title);
  std::printf("  %-4s %-9s %10s %12s\n", "idx", "NType", "duration",
              "problem");
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Node& n = g.nodes()[i];
    std::printf("  %-4zu %-9s %10s %12s\n", i,
                std::string(to_string(n.type)).c_str(),
                format_seconds(n.duration).c_str(),
                n.is_problematic() ? std::string(to_string(n.problem)).c_str()
                                   : "-");
  }
  const BenefitReport r = expected_benefit(g);
  Duration naive{0};
  for (const std::size_t i : g.problematic_indices()) {
    naive += g.nodes()[i].duration;  // "benefit = what it consumed"
  }
  std::printf("  program span: %s\n", format_seconds(g.exec_time()).c_str());
  std::printf("  naive estimate (consumption):   %s\n",
              format_seconds(naive).c_str());
  std::printf("  Figure-5 expected benefit:      %s\n",
              format_seconds(r.total).c_str());
}

}  // namespace

int main() {
  std::printf(
      "================================================================\n"
      "Figure 4 — identical waits, different outcomes\n"
      "Reproduces: SC'19 Figure 4 (large-benefit vs limited-benefit)\n"
      "================================================================\n");

  // Both graphs remove CWait0 with duration 18 units (1 unit = 1 ms).
  const Duration W = ms(18);

  // Case A: "Synchronization Removed with Large Benefit" — 21 units of
  // CPU work separate the removed wait from the next synchronization.
  const ExecutionGraph large = make({
      work(ms(5)),                               // CWork0
      launch(ms(1)),                             // CLaunch0
      wait_node(W, ProblemType::kUnnecessarySync),  // CWait0 (removed)
      work(ms(10)),                              // CWork1
      launch(ms(1)),                             // CLaunch1
      work(ms(10)),                              // CWork2
      wait_node(ms(4)),                          // CWait1 (necessary)
      work(ms(4)),                               // CWork3
      wait_node(Duration{0}),                    // exit join
  });
  show("Case A — removal with LARGE benefit:", large);

  // Case B: "Synchronization Removed with Small Benefit" — only 3 units
  // of CPU work before the next wait; it grows to absorb the other 15.
  const ExecutionGraph small = make({
      work(ms(5)),
      launch(ms(1)),
      wait_node(W, ProblemType::kUnnecessarySync),
      work(ms(2)),
      launch(ms(1)),
      wait_node(ms(10)),  // CWait1: grows to 25 after the removal
      work(ms(7)),
      wait_node(Duration{0}),
  });
  show("Case B — removal with SMALL benefit:", small);

  {
    // Show the growth of the next wait explicitly (Figure 4's right-hand
    // panels).
    ExecutionGraph g = small;
    const Duration benefit = remove_synchronization(g, 2);
    std::printf("\nCase B after RemoveSyncronization(CWait0):\n");
    std::printf("  benefit realized:          %s of %s removed\n",
                format_seconds(benefit).c_str(), format_seconds(W).c_str());
    std::printf("  next wait grew: %s -> %s\n",
                format_seconds(ms(10)).c_str(),
                format_seconds(g.nodes()[5].duration).c_str());
  }

  std::printf(
      "\nConclusion: the same 18 ms wait is worth 18 ms in case A and\n"
      "3 ms in case B. Consumption (the naive estimate) cannot tell the\n"
      "two apart; the CPU-graph upper-bound model can.\n");
  return 0;
}
