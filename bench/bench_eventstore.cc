// Event-store microbenchmarks: append/scan throughput, storage density,
// and the allocation-free-append contract, at 10K / 100K / 1M events.
//
// The store is the carrier for everything the pipeline observes, so its
// hot append path runs inside instrumentation callbacks — the numbers
// here bound the tool-side perturbation per observed event (the paper's
// honesty criterion applied to our own data plane).
//
// Modes:
//   bench_eventstore                      full sweep, prints a table and
//                                         writes BENCH_eventstore.json
//   bench_eventstore --out FILE           JSON to FILE instead
//   bench_eventstore --events N --stress-file PATH
//                                         CI stress: append N synthetic
//                                         events, save to PATH, reopen,
//                                         verify; exit nonzero on any
//                                         mismatch.
//   bench_eventstore --min-scan-speedup X --min-save-speedup Y
//                                         CI perf bar: exit nonzero if
//                                         the 8-thread scan (save)
//                                         speedup over 1 thread falls
//                                         below the floor. Only
//                                         meaningful on multi-core
//                                         hardware; the CI job gates on
//                                         hardware_concurrency.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "eventstore/cursor.h"
#include "eventstore/event_store.h"
#include "eventstore/parallel_scan.h"
#include "eventstore/run_io.h"
#include "json/json.h"
#include "parallel/thread_pool.h"
#include "support/strings.h"
#include "trace/callstack.h"

// Global allocation counter so the bench can report allocations per
// appended event (the contract is zero on the hot path).
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// Compiled out under sanitizers: replacing global new/delete conflicts
// with their allocator interposition (allocs/ev then reports 0).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DIOG_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DIOG_COUNT_ALLOCS 0
#endif
#endif
#ifndef DIOG_COUNT_ALLOCS
#define DIOG_COUNT_ALLOCS 1
#endif

#if DIOG_COUNT_ALLOCS
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DIOG_COUNT_ALLOCS

namespace diog::evstore {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A realistic event stream in the order the staged pipeline actually
// writes it: the op stream first (stages 1-2, as the app runs), then
// the sync-classification pass (stage 3), then the tool's own internal
// spans (stage 5). Long single-kind runs are what make the store's
// per-segment/per-block kind masks selective — a round-robin
// interleaving would leave every mask all-inclusive and pushdown could
// never skip anything, which is how this bench used to (honestly)
// report filtered_segments_skipped: 0 at every size.
struct Synthesizer {
  std::vector<StackId> stacks;
  NameId span_name = kNoName;
  std::uint64_t ops_end = 0;  // rows [0, ops_end) are kOp
  std::uint64_t cls_end = 0;  // rows [ops_end, cls_end) classifications

  void prepare(EventStore& store, std::uint64_t n) {
    for (int s = 0; s < 16; ++s) {
      const trace::Frame* frames[3];
      frames[0] = trace::FrameTable::instance().intern("bench_main",
                                                       "bench.cu", 10);
      frames[1] = trace::FrameTable::instance().intern(
          "phase_" + std::to_string(s % 4), "bench.cu", 50 + s % 4);
      frames[2] = trace::FrameTable::instance().intern(
          "site_" + std::to_string(s), "bench.cu", 100 + s);
      stacks.push_back(store.intern_stack(frames, 3));
    }
    span_name = store.intern_name("bench.span");
    ops_end = std::max<std::uint64_t>(1, n * 3 / 5);
    cls_end = std::max<std::uint64_t>(ops_end, n * 9 / 10);
  }

  Event make(std::uint64_t i) const {
    Event e;
    if (i >= cls_end) {
      e.kind = EventKind::kInternalSpan;
      e.name = span_name;
      e.t_start = static_cast<std::int64_t>(i * 100);
      e.t_end = e.t_start + 400;
    } else if (i >= ops_end) {
      e.kind = EventKind::kSyncClassification;
      e.op_index = (i - ops_end) % ops_end;
      e.set(flag::kSyncRequired, i % 2 == 1);
    } else {
      e.kind = EventKind::kOp;
      e.set_fn(i % 3 == 0 ? hooks::Fn::kCudaMemcpy : hooks::Fn::kCudaFree);
      e.op_index = i;
      e.t_start = static_cast<std::int64_t>(i * 100);
      e.t_end = e.t_start + 80;
      e.aux_time = static_cast<std::int64_t>(i % 50);
      e.bytes = (i % 7) * 4096;
      if (i % 3 == 0) {
        e.set(flag::kPerformedTransfer);
        e.set_direction(hooks::MemcpyKind::kHostToDevice);
      }
    }
    e.stack = stacks[i % stacks.size()];
    return e;
  }
};

struct SizeResult {
  std::uint64_t events = 0;
  double append_ms = 0;
  double scan_ms = 0;
  double filtered_scan_ms = 0;
  double bytes_per_event = 0;
  double allocs_per_event = 0;
  std::uint64_t segments = 0;
  std::uint64_t filtered_segments_skipped = 0;
  std::uint64_t filtered_blocks_skipped = 0;
};

SizeResult bench_size(std::uint64_t n) {
  SizeResult r;
  r.events = n;

  EventStore store;
  Synthesizer syn;
  syn.prepare(store, n);

  // Warm the first segment so the measured loop sees the steady state.
  store.append(syn.make(0));

  const std::size_t allocs_before = g_allocations.load();
  const double t0 = now_ms();
  for (std::uint64_t i = 1; i < n; ++i) store.append(syn.make(i));
  r.append_ms = now_ms() - t0;
  r.allocs_per_event =
      static_cast<double>(g_allocations.load() - allocs_before) /
      static_cast<double>(n - 1);

  const double t1 = now_ms();
  std::uint64_t checksum = 0;
  Cursor all(store);
  all.for_each([&](const Event& e) { checksum += e.op_index + e.bytes; });
  r.scan_ms = now_ms() - t1;

  const double t2 = now_ms();
  Cursor filtered = Cursor(store)
                        .kind(EventKind::kOp)
                        .api(hooks::Fn::kCudaMemcpy)
                        .flags_all(flag::kPerformedTransfer);
  std::uint64_t matched = 0;
  filtered.for_each([&](const Event&) { ++matched; });
  r.filtered_scan_ms = now_ms() - t2;
  r.filtered_segments_skipped = filtered.segments_skipped();
  r.filtered_blocks_skipped = filtered.blocks_skipped();

  r.bytes_per_event = static_cast<double>(store.bytes_reserved()) /
                      static_cast<double>(store.size());
  r.segments = store.segment_count();
  if (checksum == 0 && matched == 0) std::printf("(unexpected empty scan)\n");
  return r;
}

double events_per_s(std::uint64_t n, double ms) {
  return ms > 0 ? static_cast<double>(n) / (ms / 1000.0) : 0.0;
}

// Flight-recorder variant: same synthetic stream, but the store runs as
// a bounded ring. Measures the eviction tax on append throughput and
// proves the resident-byte bound holds while events keep flowing.
struct RingResult {
  std::uint64_t events = 0;
  std::uint64_t measured = 0;
  std::uint64_t retained = 0;
  std::uint64_t dropped = 0;
  std::uint64_t evicted_segments = 0;
  double append_ms = 0;
  double allocs_per_event = 0;
  std::uint64_t bytes_reserved_hwm = 0;
};

RingResult bench_ring(std::uint64_t n, std::uint64_t max_events) {
  RingResult r;
  r.events = n;

  EventStore store;
  store.set_retention(RetentionPolicy{.max_events = max_events});
  Synthesizer syn;
  syn.prepare(store, n);

  // Warm past the first full ring so the measured loop is all
  // steady-state: every segment boundary crossed evicts one in front.
  const std::uint64_t warm = max_events + kSegmentRows;
  std::uint64_t i = 0;
  for (; i < warm && i < n; ++i) store.append(syn.make(i));

  const std::size_t allocs_before = g_allocations.load();
  const double t0 = now_ms();
  for (; i < n; ++i) {
    store.append(syn.make(i));
    if (i % kSegmentRows == 0) {
      r.bytes_reserved_hwm =
          std::max(r.bytes_reserved_hwm,
                   static_cast<std::uint64_t>(store.bytes_reserved()));
    }
  }
  r.append_ms = now_ms() - t0;
  r.measured = n > warm ? n - warm : 0;
  r.allocs_per_event =
      r.measured > 0
          ? static_cast<double>(g_allocations.load() - allocs_before) /
                static_cast<double>(r.measured)
          : 0.0;
  r.bytes_reserved_hwm =
      std::max(r.bytes_reserved_hwm,
               static_cast<std::uint64_t>(store.bytes_reserved()));
  r.retained = store.size();
  r.dropped = store.dropped_events();
  r.evicted_segments = store.evicted_segments();
  return r;
}

// One row of the thread sweep: the same 1M-event store scanned, saved,
// and reopened through the parallel paths at a pinned thread count.
// The byte-identity contract (oracle-enforced) means every row computes
// the same answers; only the wall clock may move. On a single-core
// container the 2- and 8-thread rows honestly show no speedup — the
// point of recording them here is the cross-machine trend line.
struct ParallelResult {
  std::size_t threads = 0;
  double scan_ms = 0;
  double filtered_scan_ms = 0;
  double save_ms = 0;
  double open_ms = 0;
  std::uint64_t matched = 0;
  std::uint64_t filtered_segments_skipped = 0;
  std::uint64_t filtered_blocks_skipped = 0;
};

ParallelResult bench_parallel(const TraceRun& run, std::size_t tc) {
  ParallelResult r;
  r.threads = tc;
  par::set_threads(tc);
  const EventStore& store = *run.store;

  const double t0 = now_ms();
  const std::uint64_t total = parallel_count(store, Cursor(store));
  r.scan_ms = now_ms() - t0;

  ScanStats stats;
  const double t1 = now_ms();
  r.matched = parallel_count(store,
                             Cursor(store)
                                 .kind(EventKind::kOp)
                                 .api(hooks::Fn::kCudaMemcpy)
                                 .flags_all(flag::kPerformedTransfer),
                             &stats);
  r.filtered_scan_ms = now_ms() - t1;
  r.filtered_segments_skipped = stats.segments_skipped;
  r.filtered_blocks_skipped = stats.blocks_skipped;

  const std::string tmp =
      "bench_eventstore_par_" + std::to_string(tc) + ".dgtrace";
  const double t2 = now_ms();
  save_run(tmp, run);
  r.save_ms = now_ms() - t2;
  const double t3 = now_ms();
  const TraceRun back = open_run(tmp);
  r.open_ms = now_ms() - t3;
  std::remove(tmp.c_str());
  if (total != store.size() || back.store->size() != store.size()) {
    std::printf("(parallel row at %zu threads saw a size mismatch!)\n", tc);
  }
  return r;
}

int run_sweep(const std::string& out_path, double min_scan_speedup,
              double min_save_speedup) {
  std::printf("event store bench: append/scan throughput, density\n");
  std::printf("%10s %12s %12s %12s %10s %10s\n", "events", "append/s",
              "scan/s", "filt scan/s", "bytes/ev", "allocs/ev");

  json::Array sizes;
  for (const std::uint64_t n : {std::uint64_t{10'000}, std::uint64_t{100'000},
                                std::uint64_t{1'000'000}}) {
    const SizeResult r = bench_size(n);
    std::printf("%10llu %12.3g %12.3g %12.3g %10.1f %10.4f\n",
                static_cast<unsigned long long>(n),
                events_per_s(n, r.append_ms), events_per_s(n, r.scan_ms),
                events_per_s(n, r.filtered_scan_ms), r.bytes_per_event,
                r.allocs_per_event);
    json::Object o;
    o["events"] = static_cast<std::int64_t>(r.events);
    o["append_ms"] = r.append_ms;
    o["append_events_per_s"] = events_per_s(n, r.append_ms);
    o["scan_ms"] = r.scan_ms;
    o["scan_events_per_s"] = events_per_s(n, r.scan_ms);
    o["filtered_scan_ms"] = r.filtered_scan_ms;
    o["filtered_segments_skipped"] =
        static_cast<std::int64_t>(r.filtered_segments_skipped);
    o["filtered_blocks_skipped"] =
        static_cast<std::int64_t>(r.filtered_blocks_skipped);
    o["bytes_per_event"] = r.bytes_per_event;
    o["allocs_per_event"] = r.allocs_per_event;
    o["segments"] = static_cast<std::int64_t>(r.segments);
    sizes.emplace_back(std::move(o));
  }

  // Ring (flight-recorder) mode: 1M events through a 2-segment window.
  const RingResult ring = bench_ring(1'000'000, 2 * kSegmentRows);
  std::printf("ring mode (%llu-event window): %llu events, append %.3g/s, "
              "%.4f allocs/ev, %llu dropped in %llu segment(s), "
              "resident hwm %s\n",
              static_cast<unsigned long long>(2 * kSegmentRows),
              static_cast<unsigned long long>(ring.events),
              events_per_s(ring.measured, ring.append_ms),
              ring.allocs_per_event,
              static_cast<unsigned long long>(ring.dropped),
              static_cast<unsigned long long>(ring.evicted_segments),
              format_bytes(static_cast<std::size_t>(ring.bytes_reserved_hwm))
                  .c_str());

  // Save/open round trip at 1M events: the CI stress path, timed.
  TraceRun run;
  run.meta.workload = "bench_eventstore";
  Synthesizer syn;
  const std::uint64_t n = 1'000'000;
  syn.prepare(*run.store, n);
  for (std::uint64_t i = 0; i < n; ++i) run.store->append(syn.make(i));
  const std::string tmp = "bench_eventstore_tmp.dgtrace";
  const double t0 = now_ms();
  save_run(tmp, run);
  const double save_ms = now_ms() - t0;
  RunFileInfo finfo;
  const double t1 = now_ms();
  const TraceRun back = open_run(tmp, ReadMode::kAuto, &finfo);
  const double open_ms = now_ms() - t1;
  std::remove(tmp.c_str());
  std::printf("1M-event run file: save %.1f ms, open %.1f ms, %s on disk "
              "(v%u, columns %.2fx compressed)\n",
              save_ms, open_ms,
              format_bytes(static_cast<std::size_t>(finfo.bytes_consumed))
                  .c_str(),
              finfo.format_version, finfo.compression_ratio());

  // Thread sweep over the same 1M-event run: parallel scan, filtered
  // scan (with pushdown counters), save, open at 1/2/8 threads.
  const std::size_t ambient = par::threads_override();
  std::printf("%8s %12s %14s %10s %10s %10s\n", "threads", "scan/s",
              "filt scan/s", "seg skip", "save ms", "open ms");
  json::Array par_rows;
  std::vector<ParallelResult> par_results;
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    const ParallelResult p = bench_parallel(run, tc);
    par_results.push_back(p);
    std::printf("%8zu %12.3g %14.3g %10llu %10.1f %10.1f\n", p.threads,
                events_per_s(n, p.scan_ms),
                events_per_s(n, p.filtered_scan_ms),
                static_cast<unsigned long long>(p.filtered_segments_skipped),
                p.save_ms, p.open_ms);
    json::Object po;
    po["threads"] = static_cast<std::int64_t>(p.threads);
    po["scan_ms"] = p.scan_ms;
    po["scan_events_per_s"] = events_per_s(n, p.scan_ms);
    po["filtered_scan_ms"] = p.filtered_scan_ms;
    po["filtered_matched"] = static_cast<std::int64_t>(p.matched);
    po["filtered_segments_skipped"] =
        static_cast<std::int64_t>(p.filtered_segments_skipped);
    po["filtered_blocks_skipped"] =
        static_cast<std::int64_t>(p.filtered_blocks_skipped);
    po["save_ms"] = p.save_ms;
    po["open_ms"] = p.open_ms;
    par_rows.emplace_back(std::move(po));
  }
  par::set_threads(ambient);

  // 8-thread speedup over the 1-thread row, for the CI perf bar. The
  // filtered scan is too fast (pushdown skips nearly everything) to
  // time stably, so the bar watches the full scan and the save.
  const ParallelResult& one = par_results.front();
  const ParallelResult& eight = par_results.back();
  const double scan_speedup =
      eight.scan_ms > 0 ? one.scan_ms / eight.scan_ms : 0.0;
  const double save_speedup =
      eight.save_ms > 0 ? one.save_ms / eight.save_ms : 0.0;
  std::printf("8-thread speedup: scan %.2fx, save %.2fx "
              "(%u hardware thread(s))\n",
              scan_speedup, save_speedup,
              std::thread::hardware_concurrency());

  json::Object root;
  root["bench"] = std::string("eventstore");
  root["sizes"] = std::move(sizes);
  json::Object ring_o;
  ring_o["events"] = static_cast<std::int64_t>(ring.events);
  ring_o["window_events"] = static_cast<std::int64_t>(2 * kSegmentRows);
  ring_o["append_ms"] = ring.append_ms;
  ring_o["append_events_per_s"] = events_per_s(ring.measured, ring.append_ms);
  ring_o["allocs_per_event"] = ring.allocs_per_event;
  ring_o["retained_events"] = static_cast<std::int64_t>(ring.retained);
  ring_o["dropped_events"] = static_cast<std::int64_t>(ring.dropped);
  ring_o["evicted_segments"] = static_cast<std::int64_t>(ring.evicted_segments);
  ring_o["bytes_reserved_hwm"] =
      static_cast<std::int64_t>(ring.bytes_reserved_hwm);
  root["ring_1m"] = std::move(ring_o);
  json::Object io;
  io["events"] = static_cast<std::int64_t>(n);
  io["save_ms"] = save_ms;
  io["open_ms"] = open_ms;
  io["reopened_events"] = static_cast<std::int64_t>(back.store->size());
  io["file_bytes"] = static_cast<std::int64_t>(finfo.bytes_consumed);
  io["format_version"] = static_cast<std::int64_t>(finfo.format_version);
  io["compression_ratio"] = finfo.compression_ratio();
  root["run_file_1m"] = std::move(io);
  root["parallel_1m"] = std::move(par_rows);
  json::Object sp;
  sp["hardware_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  sp["scan_8t"] = scan_speedup;
  sp["save_8t"] = save_speedup;
  root["speedup_1m"] = std::move(sp);
  json::save_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  int rc = 0;
  if (min_scan_speedup > 0 && scan_speedup < min_scan_speedup) {
    std::fprintf(stderr,
                 "perf bar FAILED: 8-thread scan speedup %.2fx < %.2fx\n",
                 scan_speedup, min_scan_speedup);
    rc = 1;
  }
  if (min_save_speedup > 0 && save_speedup < min_save_speedup) {
    std::fprintf(stderr,
                 "perf bar FAILED: 8-thread save speedup %.2fx < %.2fx\n",
                 save_speedup, min_save_speedup);
    rc = 1;
  }
  return rc;
}

// CI stress: generate + persist + reopen N events, verifying counts.
int run_stress(std::uint64_t n, const std::string& path) {
  TraceRun run;
  run.meta.workload = "stress";
  Synthesizer syn;
  syn.prepare(*run.store, n);
  const double t0 = now_ms();
  for (std::uint64_t i = 0; i < n; ++i) run.store->append(syn.make(i));
  const double append_ms = now_ms() - t0;

  save_run(path, run);
  const TraceRun back = open_run(path);
  const double total_ms = now_ms() - t0;

  if (back.store->size() != n) {
    std::fprintf(stderr, "stress FAILED: reopened %llu of %llu events\n",
                 static_cast<unsigned long long>(back.store->size()),
                 static_cast<unsigned long long>(n));
    return 1;
  }
  for (const EventKind k :
       {EventKind::kOp, EventKind::kSyncClassification,
        EventKind::kInternalSpan}) {
    if (back.store->count_of(k) != run.store->count_of(k)) {
      std::fprintf(stderr, "stress FAILED: %s count mismatch\n",
                   std::string(to_string(k)).c_str());
      return 1;
    }
  }
  std::printf("stress OK: %llu events appended in %.1f ms, "
              "saved+reopened in %.1f ms total\n",
              static_cast<unsigned long long>(n), append_ms, total_ms);
  return 0;
}

}  // namespace
}  // namespace diog::evstore

int main(int argc, char** argv) {
  std::uint64_t stress_events = 0;
  std::string stress_file;
  std::string out_path = "BENCH_eventstore.json";
  double min_scan_speedup = 0;
  double min_save_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      stress_events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stress-file") == 0 && i + 1 < argc) {
      stress_file = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-scan-speedup") == 0 &&
               i + 1 < argc) {
      min_scan_speedup = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-save-speedup") == 0 &&
               i + 1 < argc) {
      min_save_speedup = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_eventstore [--out FILE] "
                   "[--min-scan-speedup X] [--min-save-speedup Y] "
                   "[--events N --stress-file PATH]\n");
      return 2;
    }
  }
  if (stress_events > 0 && !stress_file.empty()) {
    return diog::evstore::run_stress(stress_events, stress_file);
  }
  return diog::evstore::run_sweep(out_path, min_scan_speedup,
                                  min_save_speedup);
}
