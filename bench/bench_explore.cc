// Explorer endpoint benchmark: warm latency and response bytes for the
// timeline / flame / findings views over a million-event run.
//
// The explorer's promise is that interaction cost is bounded by the
// viewport, not the run: any timeline request over a 1M-event run must
// answer from a few hundred KB of JSON in interactive time. This bench
// measures exactly that promise — a cold first request (cache fill +
// lazy analysis), then the warm steady state a user actually scrubs
// through — and writes BENCH_explore.json with the budget verdict the
// acceptance gate reads (timeline <= 512 KiB and < 50 ms warm).
//
//   bench_explore [--out FILE] [--events N] [--reps N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "eventstore/run_io.h"
#include "explore/http.h"
#include "explore/service.h"
#include "json/json.h"
#include "testkit/synth_run.h"

namespace diog::explore {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kTimelineByteBudget = 512 * 1024;
constexpr double kTimelineWarmMsBudget = 50.0;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpRequest request_for(const std::string& target) {
  HttpRequest req;
  if (!parse_request_line("GET " + target + " HTTP/1.1", req)) {
    std::fprintf(stderr, "bad bench target: %s\n", target.c_str());
    std::exit(2);
  }
  return req;
}

int run(const std::string& out_path, std::uint64_t events,
        std::size_t reps) {
  const std::string dir =
      (fs::temp_directory_path() / "diog_bench_explore").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string run_path = dir + "/bench.dgtrace";

  double t = now_ms();
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = events});
  const double build_ms = now_ms() - t;
  t = now_ms();
  evstore::save_run(run_path, run);
  const double save_ms = now_ms() - t;

  Service svc({.root = dir, .config = {}, .archive_root = {}});

  struct Target {
    const char* label;
    std::string target;
  };
  const std::vector<Target> targets = {
      {"timeline_full", "/api/timeline?run=bench&px=1024"},
      {"timeline_zoom",
       "/api/timeline?run=bench&px=1024&t0=0&t1=1000000&tracks=op"},
      {"flame", "/api/flame?run=bench"},
      {"findings", "/api/findings?run=bench"},
  };

  bool within_budget = true;
  json::Array rows;
  for (const Target& tg : targets) {
    const HttpRequest req = request_for(tg.target);

    t = now_ms();
    const HttpResponse first = svc.handle(req);
    const double cold_ms = now_ms() - t;
    if (first.status != 200) {
      std::fprintf(stderr, "%s answered %d: %s\n", tg.target.c_str(),
                   first.status, first.body.c_str());
      return 1;
    }

    std::vector<double> warm;
    warm.reserve(reps);
    std::size_t bytes = first.body.size();
    for (std::size_t r = 0; r < reps; ++r) {
      t = now_ms();
      const HttpResponse resp = svc.handle(req);
      warm.push_back(now_ms() - t);
      bytes = resp.body.size();
    }
    std::sort(warm.begin(), warm.end());
    const double p50 = warm[warm.size() / 2];
    double mean = 0;
    for (const double w : warm) mean += w;
    mean /= static_cast<double>(warm.size());

    const bool is_timeline =
        std::string_view(tg.label).starts_with("timeline");
    const bool ok = !is_timeline || (bytes <= kTimelineByteBudget &&
                                     p50 < kTimelineWarmMsBudget);
    within_budget = within_budget && ok;

    std::printf("%-14s %8zu bytes  cold %8.2f ms  warm p50 %7.3f ms%s\n",
                tg.label, bytes, cold_ms, p50,
                ok ? "" : "  ** OVER BUDGET **");

    json::Object row;
    row["label"] = std::string(tg.label);
    row["target"] = tg.target;
    row["bytes"] = static_cast<std::int64_t>(bytes);
    row["cold_ms"] = cold_ms;
    row["warm_ms_p50"] = p50;
    row["warm_ms_mean"] = mean;
    row["reps"] = static_cast<std::int64_t>(reps);
    row["within_budget"] = ok;
    rows.emplace_back(std::move(row));
  }

  json::Object root;
  root["bench"] = std::string("explore");
  root["events"] = static_cast<std::int64_t>(events);
  root["build_ms"] = build_ms;
  root["save_ms"] = save_ms;
  json::Object budget;
  budget["timeline_max_bytes"] =
      static_cast<std::int64_t>(kTimelineByteBudget);
  budget["timeline_warm_ms"] = kTimelineWarmMsBudget;
  budget["within_budget"] = within_budget;
  root["budget"] = std::move(budget);
  root["endpoints"] = std::move(rows);
  json::save_file(out_path, json::Value(std::move(root)));
  std::printf("wrote %s\n", out_path.c_str());

  fs::remove_all(dir);
  return within_budget ? 0 : 1;
}

}  // namespace
}  // namespace diog::explore

int main(int argc, char** argv) {
  std::string out_path = "BENCH_explore.json";
  std::uint64_t events = 1'000'000;
  std::size_t reps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_explore [--out FILE] [--events N] "
                   "[--reps N]\n");
      return 2;
    }
  }
  return diog::explore::run(out_path, events, reps);
}
