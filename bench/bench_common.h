// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (SC'19, §5). Absolute times differ from the paper — the
// substrate is a virtual-clock simulator, not LLNL's Ray cluster and the
// workloads are scaled — but the rows/series have the same shape:
// who is flagged, in what order, and at roughly what fraction of
// execution time.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "core/diogenes.h"
#include "core/report.h"
#include "support/strings.h"

namespace diog::bench {

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

// "0.343s (6.87%)" in a fixed-width cell.
inline std::string cell(const ffm::AnalysisResult& r, Duration d) {
  return format_seconds(d) + " (" + format_percent(r.fraction_of_exec(d)) +
         ")";
}

// The estimate for the problems a given fix addresses: the subset of
// problematic graph nodes selected by `pick`, evaluated with one subset
// pass (the way the paper scopes Table 1's "Diogenes Estimated Benefit"
// to the issues actually corrected).
template <typename Pick>
Duration estimate_for_fix(const ffm::AnalysisResult& r, Pick&& pick) {
  std::vector<std::size_t> nodes;
  for (std::size_t i = 0; i < r.graph.size(); ++i) {
    const ffm::Node& n = r.graph.nodes()[i];
    if (n.is_problematic() && pick(n)) nodes.push_back(i);
  }
  return ffm::expected_benefit_subset(r.graph, nodes).total;
}

// Accuracy as the paper reports it: min/max of (estimated, actual).
inline double accuracy(Duration estimated, Duration actual) {
  const double a = static_cast<double>(estimated.count());
  const double b = static_cast<double>(actual.count());
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return a < b ? a / b : b / a;
}

}  // namespace diog::bench
