// Table 1 — "Applications improved by correcting a subset of Diogenes
// discovered issues."
//
// For each of the four applications: run the full five-stage pipeline on
// the pathological variant, scope the estimate to the problems the
// paper's fix addressed, then measure the actual runtime reduction of
// the fixed variant. Paper reference values are printed alongside.
#include "bench_common.h"

namespace diog::bench {
namespace {

struct Row {
  std::string name;
  std::string issues;
  Duration estimated{0};
  Duration actual{0};
  double est_pct = 0, act_pct = 0;
  std::string paper;
};

Row evaluate(const apps::AppPair& app,
             const std::function<bool(const ffm::Node&)>& fix_scope,
             const std::string& issues, const std::string& paper) {
  ffm::Diogenes tool(app.pathological);
  const ffm::AnalysisResult r = tool.analyze();

  const Duration native = ffm::run_uninstrumented(app.pathological);
  const Duration fixed = ffm::run_uninstrumented(app.fixed);

  Row row;
  row.name = app.name;
  row.issues = issues;
  row.estimated = estimate_for_fix(r, fix_scope);
  row.actual = native - fixed;
  row.est_pct = r.fraction_of_exec(row.estimated);
  row.act_pct = static_cast<double>(row.actual.count()) /
                static_cast<double>(native.count());
  row.paper = paper;
  return row;
}

}  // namespace
}  // namespace diog::bench

int main() {
  using namespace diog;
  using namespace diog::bench;
  using ffm::Node;
  using hooks::Fn;

  print_header("Table 1 — estimated vs actual benefit per application",
               "SC'19 Table 1");

  const auto app_list = apps::all_apps();
  std::vector<Row> rows;

  // cumf_als: the fix removed the per-iteration frees (and their hidden
  // syncs) and the duplicate tile uploads.
  rows.push_back(evaluate(
      app_list[0],
      [](const Node& n) {
        return n.api == Fn::kCudaFree ||
               n.problem == ffm::ProblemType::kUnnecessaryTransfer;
      },
      "Sync and Mem Trans",
      "est 137s (10.0%) / actual 106s (8.3%) / acc 77%"));

  // cuIBM: the fix pooled the Thrust-style temporaries, eliminating the
  // per-call cudaFree syncs (plus, as a side effect, the alloc churn).
  rows.push_back(evaluate(
      app_list[1],
      [](const Node& n) { return n.api == Fn::kCudaFree; }, "Sync",
      "est 202s (10.8%) / actual 330s (17.6%) / acc 61%"));

  // AMG: the fix replaced cudaMemset-on-managed with a host memset.
  rows.push_back(evaluate(
      app_list[2],
      [](const Node& n) { return n.api == Fn::kCudaMemset; }, "Sync",
      "est 0.34s (6.8%) / actual 0.29s (5.8%) / acc 85%"));

  // Rodinia: the fix commented out cudaThreadSynchronize.
  rows.push_back(evaluate(
      app_list[3],
      [](const Node& n) { return n.api == Fn::kCudaThreadSynchronize; },
      "Sync", "est 0.13s (2.2%) / actual 0.12s (2.1%) / acc 92%"));

  std::printf("\n%-10s %-20s %24s %24s %10s\n", "App", "Issues",
              "Diogenes Estimated", "Actual Reduction", "Accuracy");
  double acc_sum = 0;
  for (const Row& r : rows) {
    const double acc = accuracy(r.estimated, r.actual);
    acc_sum += acc;
    std::printf("%-10s %-20s %12s (%5s) %12s (%5s) %9.0f%%\n",
                r.name.c_str(), r.issues.c_str(),
                format_seconds(r.estimated).c_str(),
                format_percent(r.est_pct, 1).c_str(),
                format_seconds(r.actual).c_str(),
                format_percent(r.act_pct, 1).c_str(), acc * 100.0);
    std::printf("%-10s   paper: %s\n", "", r.paper.c_str());
  }
  std::printf("\nCombined accuracy (mean of per-app min/max): %.0f%%"
              "  [paper: ~77%% combined]\n",
              acc_sum / static_cast<double>(rows.size()) * 100.0);
  std::printf("\nNote: absolute seconds are scaled (virtual clock, reduced\n"
              "iteration counts); percentages of execution time are the\n"
              "comparable quantities.\n");
  return 0;
}
