// Figures 6 & 8 — the cumf_als sequence display and the subsequence
// refinement.
//
// Figure 6: Diogenes' listing of a sequence of unnecessary operations
// spanning two functions (duplicate uploads, per-iteration frees, a
// redundant deviceSynchronize), with recoverable time and issue counts.
// Figure 8: the user selects a subsequence (the paper chose entries
// 10..23, starting at the first easily fixable operation) and gets a
// refined estimate with NO additional data collection — pure re-analysis
// of the stored graph.
//
// Also includes the sequence-vs-independent ablation: the same member
// set priced as one sequence (overflow carried forward through the run,
// §3.5.2) vs as isolated single points.
#include "bench_common.h"

int main() {
  using namespace diog;
  using namespace diog::bench;

  print_header("Figures 6 & 8 — cumf_als sequence and subsequence",
               "SC'19 Figures 6, 8");

  ffm::Diogenes tool(apps::make_cumf_als());
  const ffm::AnalysisResult r = tool.analyze();

  if (r.sequences.empty()) {
    std::printf("no sequences found (unexpected)\n");
    return 1;
  }
  const ffm::Group& seq = r.sequences[0];

  // --- Figure 6: the sequence listing ------------------------------------
  std::printf("\n%s", ffm::render_sequence(r, seq).c_str());
  std::printf("[paper: 155.785s (11.45%%), 23 sync issues, 5 transfer "
              "issues, entries 'cudaMemcpy in als.cpp at line 738' ...]\n");

  // --- Figure 8: subsequence refinement ----------------------------------
  const auto entries = ffm::sequence_entries(r.graph, seq);
  // The paper's subsequence starts at the first cudaFree the authors
  // could fix easily; ours starts at the first free entry too.
  std::size_t first = 1;
  for (const auto& e : entries) {
    if (e.description.find("cudaFree") != std::string::npos) {
      first = e.ordinal;
      break;
    }
  }
  const ffm::Group sub =
      ffm::subsequence(r.graph, seq, first, entries.size());
  std::printf("\n%s",
              ffm::render_subsequence(r, sub, first, entries.size()).c_str());
  std::printf("[paper: subsequence 10..23 recovers 137.136s (10.08%%) of "
              "the full sequence's 155.785s (11.45%%) — no additional "
              "collection needed]\n");

  // --- Ablation: sequence pricing vs independent single-point pricing ----
  print_header("Ablation — sequence carry-forward vs independent pricing",
               "SC'19 §3.5.2 (sequence grouping)");
  {
    // As one sequence: one subset pass over all members; unrealized
    // savings flow forward into later members' windows.
    std::vector<std::size_t> all_members;
    for (const auto& inst : seq.instances) {
      all_members.insert(all_members.end(), inst.begin(), inst.end());
    }
    std::sort(all_members.begin(), all_members.end());
    const Duration together =
        ffm::expected_benefit_subset(r.graph, all_members).total;

    // Priced independently: each member alone in its own pass (no
    // carry-forward between members).
    Duration independent{0};
    for (const std::size_t m : all_members) {
      const std::vector<std::size_t> solo{m};
      independent += ffm::expected_benefit_subset(r.graph, solo).total;
    }
    std::printf("sequence members priced together:     %s (%s)\n",
                format_seconds(together).c_str(),
                format_percent(r.fraction_of_exec(together)).c_str());
    std::printf("same members priced independently:    %s (%s)\n",
                format_seconds(independent).c_str(),
                format_percent(r.fraction_of_exec(independent)).c_str());
    std::printf(
        "\nThe gap is the carry-forward effect: an isolated fix's freed\n"
        "time is re-absorbed by the neighbouring unnecessary syncs, so\n"
        "pricing members independently under-credits fixing them all.\n");
  }
  return 0;
}
