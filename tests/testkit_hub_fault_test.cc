// Fault injection through the hub's four sites (ISSUE 9 satellite):
// accept, session read, spool write, spool fsync. The contract is the
// same one the local persistence layer honors under ISSUE 4 faults —
// every injected failure surfaces as a classified diog::Error, and the
// spool left behind is always a readable run-file prefix, never a
// corrupt one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eventstore/run_format.h"
#include "eventstore/run_io.h"
#include "hub/client.h"
#include "hub/protocol.h"
#include "hub/server.h"
#include "hub/session.h"
#include "support/error.h"
#include "testkit/fault_plan.h"
#include "testkit/synth_run.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIOG_HUB_TEST_SOCKETS 1
#else
#define DIOG_HUB_TEST_SOCKETS 0
#endif

namespace diog::testkit {
namespace {

namespace fs = std::filesystem;
namespace fmt = evstore::format;

class HubFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_hubfault_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    // Large enough that the v3-compressed file still spans several of
    // the server's 64 KiB reads — the read-fault test's `after` count
    // assumes the stream cannot drain in one or two recv() calls.
    SynthRunOptions so;
    so.events = 20000;
    evstore::TraceRun run = make_synthetic_run(so);
    run.meta.workload = "hub_fault_wl";
    const std::string local = dir_ + "/local.dgtrace";
    evstore::SaveOptions sv;
    sv.footer_wall_ms = 0;
    evstore::save_run(local, run, sv);
    std::ifstream in(local, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Streams hello + the saved run into a session; rethrows feed errors.
  void stream_all(hub::Session& session) {
    const std::string hello = hub::encode_hello("hub_fault_wl");
    session.feed(reinterpret_cast<const unsigned char*>(hello.data()),
                 hello.size());
    constexpr std::size_t kStep = 997;
    for (std::size_t off = 0; off < bytes_.size(); off += kStep) {
      session.feed(bytes_.data() + off,
                   std::min(kStep, bytes_.size() - off));
    }
    session.end_of_stream();
  }

  std::string dir_;
  std::vector<unsigned char> bytes_;
};

// A failed spool write (ENOSPC on the hub host) classifies, and the
// frames that landed before it remain a readable prefix. `after = 1`
// lets the 16-byte header through, so the prefix is a valid empty run.
TEST_F(HubFaultTest, SpoolWriteFailureLeavesAReadableHeaderPrefix) {
  FaultPlan plan(11);
  FaultSpec spec;
  spec.site = "hub.spool.write";
  spec.action = FaultAction::kFail;
  spec.after = 1;
  plan.add(spec);

  const std::string spool = dir_ + "/spool.dgtrace";
  {
    FaultScope scope(plan);
    hub::SessionOptions sopts;
    sopts.spool_path = spool;
    sopts.fsync_spool = false;
    hub::Session session(std::move(sopts));
    try {
      stream_all(session);
      FAIL() << "injected spool write failure did not surface";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("write failed for hub spool"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("injected fault"),
                std::string::npos);
    }
    EXPECT_TRUE(session.failed());
  }
  EXPECT_EQ(plan.fires("hub.spool.write"), 1u);
  EXPECT_GE(plan.hits("hub.spool.write"), 2u);

  // The header-only spool opens as an empty, unfinalized prefix.
  ASSERT_TRUE(fs::exists(spool));
  EXPECT_EQ(fs::file_size(spool), fmt::kHeaderBytes);
  evstore::RunFileInfo info;
  (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info);
  EXPECT_EQ(info.events, 0u);
  EXPECT_FALSE(info.finalized);
}

// A short write mid-frame tears the spool exactly the way a killed
// server would: the partial frame is a torn tail, the frames before it
// are intact, and open_run classifies the file as a readable prefix.
TEST_F(HubFaultTest, ShortSpoolWriteTearsTheFrameNotTheContract) {
  FaultPlan plan(12);
  FaultSpec spec;
  spec.site = "hub.spool.write";
  spec.action = FaultAction::kShortWrite;
  spec.after = 2;      // header + first frame land whole
  spec.magnitude = 7;  // then 7 bytes of the next frame
  plan.add(spec);

  const std::string spool = dir_ + "/spool.dgtrace";
  {
    FaultScope scope(plan);
    hub::SessionOptions sopts;
    sopts.spool_path = spool;
    sopts.fsync_spool = false;
    hub::Session session(std::move(sopts));
    EXPECT_THROW(stream_all(session), Error);
    EXPECT_TRUE(session.failed());
  }
  EXPECT_EQ(plan.fires("hub.spool.write"), 1u);

  // 16-byte header + one whole frame + a 7-byte torn tail — and the
  // reader shrugs the tail off as a crash would leave it.
  ASSERT_TRUE(fs::exists(spool));
  EXPECT_GT(fs::file_size(spool), fmt::kHeaderBytes + 7u);
  evstore::RunFileInfo info;
  EXPECT_NO_THROW(
      (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info));
  EXPECT_FALSE(info.clean);
  EXPECT_FALSE(info.finalized);
}

#if DIOG_HUB_TEST_SOCKETS
// fsync is POSIX-gated in the session; only exercise it where it runs.
TEST_F(HubFaultTest, SpoolFsyncFailureClassifiesAndKeepsThePrefix) {
  FaultPlan plan(13);
  FaultSpec spec;
  spec.site = "hub.spool.fsync";
  plan.add(spec);

  const std::string spool = dir_ + "/spool.dgtrace";
  {
    FaultScope scope(plan);
    hub::SessionOptions sopts;
    sopts.spool_path = spool;
    sopts.fsync_spool = true;  // the site only arms on the durable path
    hub::Session session(std::move(sopts));
    try {
      stream_all(session);
      FAIL() << "injected fsync failure did not surface";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("fsync failed for hub spool"),
                std::string::npos)
          << e.what();
    }
    EXPECT_TRUE(session.failed());
  }
  EXPECT_GE(plan.fires("hub.spool.fsync"), 1u);

  // Everything written before the failed sync was flushed on the error
  // path, so the spool is still a coherent prefix.
  ASSERT_TRUE(fs::exists(spool));
  evstore::RunFileInfo info;
  EXPECT_NO_THROW(
      (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info));
}

// A refused accept() surfaces to the client as a classified Error,
// fires exactly once, and the very next push succeeds — the daemon does
// not wedge on a transient accept failure. The client may see either
// the refusal line or a connection reset (closing a socket with unread
// received data RSTs the in-flight refusal); both are classified, and
// the server-side accounting is what proves the fault was the cause.
TEST_F(HubFaultTest, AcceptFaultRefusesOneConnectionThenRecovers) {
  hub::ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  hub::HubServer server(std::move(sopts));
  server.bind();
  std::thread serve([&server] { server.serve(); });

  FaultPlan plan(14);
  FaultSpec spec;
  spec.site = "hub.accept";
  spec.max_fires = 1;
  plan.add(spec);

  hub::ClientOptions copts;
  copts.port = server.port();
  copts.workload = "hub_fault_wl";
  {
    FaultScope scope(plan);
    EXPECT_THROW((void)hub::push_bytes(bytes_.data(), bytes_.size(), copts),
                 Error);
    const hub::HubResponse r =
        hub::push_bytes(bytes_.data(), bytes_.size(), copts);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.deduplicated);
    // Stop inside the scope: serving threads must not outlive the plan.
    server.stop();
    serve.join();
  }
  EXPECT_EQ(plan.fires("hub.accept"), 1u);
}

// A failed read mid-session classifies, leaves the spool behind as the
// validated prefix, and the retry lands the full run.
TEST_F(HubFaultTest, SessionReadFaultClassifiesAndTheRetrySucceeds) {
  hub::ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  hub::HubServer server(std::move(sopts));
  server.bind();
  std::thread serve([&server] { server.serve(); });

  FaultPlan plan(15);
  FaultSpec spec;
  spec.site = "hub.session.read";
  spec.after = 2;  // let the hello + header reads through first
  spec.max_fires = 1;
  plan.add(spec);

  hub::ClientOptions copts;
  copts.port = server.port();
  copts.workload = "hub_fault_wl";
  {
    FaultScope scope(plan);
    // The read fault aborts the session after the payload drained, so
    // the refusal line normally survives; tolerate a reset regardless.
    EXPECT_THROW((void)hub::push_bytes(bytes_.data(), bytes_.size(), copts),
                 Error);
    const hub::HubResponse r =
        hub::push_bytes(bytes_.data(), bytes_.size(), copts);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.events, 20000u);
    server.stop();
    serve.join();
  }
  EXPECT_EQ(plan.fires("hub.session.read"), 1u);

  // The aborted session's spool survives for post-mortem inspection and
  // opens as a readable prefix of what had validated before the fault.
  std::size_t spools = 0;
  for (const auto& entry :
       fs::directory_iterator(dir_ + "/archive/spool")) {
    ++spools;
    evstore::RunFileInfo info;
    EXPECT_NO_THROW((void)evstore::open_run(
        entry.path().string(), evstore::ReadMode::kAuto, &info));
  }
  EXPECT_EQ(spools, 1u);
}
#endif  // DIOG_HUB_TEST_SOCKETS

}  // namespace
}  // namespace diog::testkit
