#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpusim/api.h"
#include "gpusim/blaslike.h"
#include "gpusim/host_buffer.h"
#include "gpusim/private_api.h"
#include "gpusim/runtime.h"
#include "gpusim/thrustlike.h"
#include "support/error.h"

namespace gpusim {
namespace {

using diog::Duration;
using diog::hooks::Fn;
using diog::hooks::MemcpyKind;
using diog::hooks::MemKind;
using diog::hooks::OpInfo;
using diog::hooks::Probe;

class GpusimTest : public ::testing::Test {
 protected:
  GpusimTest() : rt_(make_config()), scope_(rt_) {}

  static DeviceConfig make_config() {
    DeviceConfig d;
    // Simple round numbers for assertable arithmetic.
    d.h2d_bandwidth_bytes_per_s = 1e9;
    d.d2h_bandwidth_bytes_per_s = 1e9;
    d.transfer_latency = diog::us(10);
    return d;
  }

  Duration now() { return rt_.clock().now(); }

  Runtime rt_;
  RuntimeScope scope_;
};

// --- Memory ------------------------------------------------------------------

TEST_F(GpusimTest, MallocReturnsDistinctWritableBacking) {
  void* a = nullptr;
  void* b = nullptr;
  ASSERT_EQ(cudaMalloc(&a, 4096), cudaSuccess);
  ASSERT_EQ(cudaMalloc(&b, 4096), cudaSuccess);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 4096);  // device backing is real memory
  EXPECT_EQ(static_cast<unsigned char*>(a)[4095], 0xAA);
  EXPECT_EQ(cudaFree(a), cudaSuccess);
  EXPECT_EQ(cudaFree(b), cudaSuccess);
}

TEST_F(GpusimTest, MallocNullArgFails) {
  EXPECT_EQ(cudaMalloc(nullptr, 16), cudaError_t::cudaErrorInvalidValue);
}

TEST_F(GpusimTest, MallocZeroBytesSucceeds) {
  void* p = nullptr;
  EXPECT_EQ(cudaMalloc(&p, 0), cudaSuccess);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(cudaFree(p), cudaSuccess);
}

TEST_F(GpusimTest, DeviceCapacityEnforced) {
  DeviceConfig small = make_config();
  small.device_memory_bytes = 1 << 20;
  Runtime rt(small);
  // Swap the active runtime for this test.
  // (Scopes cannot nest; use the raw API on a scratch runtime.)
  void* p = nullptr;
  {
    // End the fixture's scope temporarily.
  }
  (void)p;
  SUCCEED();  // capacity behaviour covered in MemoryManager test below
}

TEST(MemoryManager, CapacityAndClassification) {
  MemoryManager mm(/*device_capacity_bytes=*/1 << 20);
  void* a = mm.alloc_device(512 * 1024);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(mm.alloc_device(768 * 1024), nullptr);  // over capacity
  EXPECT_EQ(mm.device_bytes_in_use(), 512u * 1024);

  void* pin = mm.alloc_pinned(100);
  void* man = mm.alloc_managed(100);
  EXPECT_EQ(mm.classify(a), MemKind::kDevice);
  EXPECT_EQ(mm.classify(pin), MemKind::kPinned);
  EXPECT_EQ(mm.classify(man), MemKind::kManaged);
  int stack_var = 0;
  EXPECT_EQ(mm.classify(&stack_var), MemKind::kPageable);

  // Interior pointers resolve to their containing allocation.
  EXPECT_EQ(mm.classify(static_cast<char*>(a) + 1000), MemKind::kDevice);
  const Allocation* found = mm.find(static_cast<char*>(a) + 1000);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ptr, a);

  EXPECT_TRUE(mm.free(a));
  EXPECT_EQ(mm.device_bytes_in_use(), 0u);
  EXPECT_FALSE(mm.free(a));  // double free rejected
  EXPECT_EQ(mm.find(a), nullptr);
  EXPECT_TRUE(mm.free(pin));
  EXPECT_TRUE(mm.free(man));
  EXPECT_EQ(mm.live_allocation_count(), 0u);
}

TEST_F(GpusimTest, FreeNullptrIsNoOp) {
  EXPECT_EQ(cudaFree(nullptr), cudaSuccess);
}

TEST_F(GpusimTest, FreeOfHostPointerFails) {
  int x = 0;
  EXPECT_EQ(cudaFree(&x), cudaError_t::cudaErrorInvalidDevicePointer);
}

TEST_F(GpusimTest, FreeHostRequiresPinnedPointer) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 64);
  EXPECT_EQ(cudaFreeHost(dev), cudaError_t::cudaErrorInvalidValue);
  (void)cudaFree(dev);

  void* pin = nullptr;
  ASSERT_EQ(cudaMallocHost(&pin, 64), cudaSuccess);
  EXPECT_EQ(cudaFreeHost(pin), cudaSuccess);
}

// --- Kernel launch / stream ordering ---------------------------------------------

TEST_F(GpusimTest, LaunchIsAsynchronousToCpu) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  const Duration before = now();
  ASSERT_EQ(cudaLaunchKernel(k), cudaSuccess);
  // Only the launch cost elapsed on the CPU, not the kernel duration.
  EXPECT_LT(now() - before, diog::ms(1));
  EXPECT_FALSE(rt_.device().idle());
  (void)cudaDeviceSynchronize();
}

TEST_F(GpusimTest, DeviceSynchronizeWaitsForKernel) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)cudaLaunchKernel(k);
  (void)cudaDeviceSynchronize();
  EXPECT_GE(now(), diog::ms(10));
  EXPECT_TRUE(rt_.device().idle());
}

TEST_F(GpusimTest, KernelsInOneStreamSerialize) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(5);
  (void)cudaLaunchKernel(k);
  (void)cudaLaunchKernel(k);
  (void)cudaDeviceSynchronize();
  EXPECT_GE(now(), diog::ms(10));
}

TEST_F(GpusimTest, KernelsInDifferentStreamsOverlap) {
  StreamId s1, s2;
  ASSERT_EQ(cudaStreamCreate(&s1), cudaSuccess);
  ASSERT_EQ(cudaStreamCreate(&s2), cudaSuccess);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(5);
  (void)cudaLaunchKernel(k, s1);
  (void)cudaLaunchKernel(k, s2);
  (void)cudaDeviceSynchronize();
  EXPECT_LT(now(), diog::ms(8));  // overlapped, not serialized
  (void)cudaStreamDestroy(s1);
  (void)cudaStreamDestroy(s2);
}

TEST_F(GpusimTest, StreamSynchronizeWaitsOnlyThatStream) {
  StreamId s1, s2;
  (void)cudaStreamCreate(&s1);
  (void)cudaStreamCreate(&s2);
  KernelDesc fast;
  fast.name = "fast";
  fast.duration = diog::ms(1);
  KernelDesc slow;
  slow.name = "slow";
  slow.duration = diog::ms(20);
  (void)cudaLaunchKernel(fast, s1);
  (void)cudaLaunchKernel(slow, s2);
  (void)cudaStreamSynchronize(s1);
  EXPECT_LT(now(), diog::ms(5));
  EXPECT_FALSE(rt_.device().idle(s2));
  (void)cudaDeviceSynchronize();
}

TEST_F(GpusimTest, KernelBodyMutatesDeviceBacking) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, sizeof(float));
  KernelDesc k;
  k.name = "writer";
  k.duration = diog::us(5);
  k.body = [dev] { *static_cast<float*>(dev) = 7.5f; };
  (void)cudaLaunchKernel(k);
  (void)cudaDeviceSynchronize();
  float out = 0;
  (void)cudaMemcpy(&out, dev, sizeof(float), MemcpyKind::kDeviceToHost);
  EXPECT_EQ(out, 7.5f);
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, LaunchOnUnknownStreamFails) {
  KernelDesc k;
  k.name = "k";
  EXPECT_EQ(cudaLaunchKernel(k, 999),
            cudaError_t::cudaErrorInvalidResourceHandle);
}

TEST_F(GpusimTest, StreamDestroyValidation) {
  EXPECT_EQ(cudaStreamDestroy(kDefaultStream),
            cudaError_t::cudaErrorInvalidResourceHandle);
  EXPECT_EQ(cudaStreamDestroy(12345),
            cudaError_t::cudaErrorInvalidResourceHandle);
}

// --- Transfers: data movement + synchronization semantics --------------------------

TEST_F(GpusimTest, MemcpyMovesBytesBothWays) {
  const std::vector<char> src{'d', 'i', 'o', 'g'};
  std::vector<char> dst(4, 0);
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 4);
  ASSERT_EQ(cudaMemcpy(dev, src.data(), 4, MemcpyKind::kHostToDevice),
            cudaSuccess);
  ASSERT_EQ(cudaMemcpy(dst.data(), dev, 4, MemcpyKind::kDeviceToHost),
            cudaSuccess);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 4), 0);
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, MemcpyDurationFollowsBandwidthModel) {
  void* dev = nullptr;
  std::vector<char> host(1000000);
  (void)cudaMalloc(&dev, host.size());
  const Duration before = now();
  (void)cudaMemcpy(dev, host.data(), host.size(),
                   MemcpyKind::kHostToDevice);
  // 1 MB at 1 GB/s = 1 ms, + 10 us latency + setup cost.
  const Duration elapsed = now() - before;
  EXPECT_GE(elapsed, diog::ms(1));
  EXPECT_LT(elapsed, diog::ms(2));
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, MemcpyKindValidation) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 16);
  char host[16];
  // Wrong-direction pointers are rejected.
  EXPECT_EQ(cudaMemcpy(host, dev, 16, MemcpyKind::kHostToDevice),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaMemcpy(dev, host, 16, MemcpyKind::kDeviceToHost),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaMemcpy(host, host, 16, MemcpyKind::kDeviceToDevice),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaMemcpy(dev, dev, 16, MemcpyKind::kHostToHost),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaMemcpy(nullptr, host, 16, MemcpyKind::kHostToHost),
            cudaError_t::cudaErrorInvalidValue);
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, SyncMemcpyDrainsPrecedingKernels) {
  // The implicit synchronization: a blocking copy waits for kernels
  // queued ahead of it in the stream.
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(50);
  (void)cudaLaunchKernel(k);
  char host[8];
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 8);
  (void)cudaMemcpy(dev, host, 8, MemcpyKind::kHostToDevice);
  EXPECT_GE(now(), diog::ms(50));
  EXPECT_TRUE(rt_.device().idle(kDefaultStream));
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, AsyncMemcpyToPinnedDoesNotBlock) {
  void* dev = nullptr;
  void* pinned = nullptr;
  (void)cudaMalloc(&dev, 1 << 20);
  (void)cudaMallocHost(&pinned, 1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(30);
  (void)cudaLaunchKernel(k);
  const Duration before = now();
  ASSERT_EQ(cudaMemcpyAsync(pinned, dev, 1 << 20,
                            MemcpyKind::kDeviceToHost),
            cudaSuccess);
  EXPECT_LT(now() - before, diog::ms(1));  // returned immediately
  (void)cudaDeviceSynchronize();
  (void)cudaFreeHost(pinned);
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, AsyncMemcpyD2HToPageableBlocks) {
  // THE paper example: "cudaMemcpyAsync performs an unreported
  // synchronization when a device-to-host transfer is performed to a CPU
  // memory address not allocated via cudaMallocHost."
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 1 << 20);
  HostBuffer<char> pageable(1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(30);
  (void)cudaLaunchKernel(k);
  ASSERT_EQ(cudaMemcpyAsync(pageable.data(), dev, 1 << 20,
                            MemcpyKind::kDeviceToHost),
            cudaSuccess);
  EXPECT_GE(now(), diog::ms(30));  // it blocked
  EXPECT_TRUE(rt_.device().idle(kDefaultStream));
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, AsyncMemcpyH2DFromPageableStagesWithoutSync) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 1 << 20);
  HostBuffer<char> pageable(1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(30);
  (void)cudaLaunchKernel(k);
  (void)cudaMemcpyAsync(dev, pageable.data(), 1 << 20,
                        MemcpyKind::kHostToDevice);
  EXPECT_LT(now(), diog::ms(5));  // staging cost only, no device sync
  (void)cudaDeviceSynchronize();
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, FreeImplicitlySynchronizes) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(25);
  (void)cudaLaunchKernel(k);
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 64);
  (void)cudaFree(dev);  // drains the whole device first
  EXPECT_GE(now(), diog::ms(25));
  EXPECT_TRUE(rt_.device().idle());
}

TEST_F(GpusimTest, MemsetOnDeviceMemoryDoesNotBlock) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 4096);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(20);
  (void)cudaLaunchKernel(k);
  ASSERT_EQ(cudaMemset(dev, 0xFF, 4096), cudaSuccess);
  EXPECT_LT(now(), diog::ms(5));  // async with respect to the CPU
  (void)cudaDeviceSynchronize();
  EXPECT_EQ(static_cast<unsigned char*>(dev)[100], 0xFF);
  (void)cudaFree(dev);
}

TEST_F(GpusimTest, MemsetOnManagedMemoryBlocks) {
  // The AMG pathology: "cudaMemset performs a synchronization only when
  // it [is] used on a unified memory address."
  void* managed = nullptr;
  (void)cudaMallocManaged(&managed, 4096);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(20);
  (void)cudaLaunchKernel(k);
  ASSERT_EQ(cudaMemset(managed, 0, 4096), cudaSuccess);
  EXPECT_GE(now(), diog::ms(20));  // it synchronized
  (void)cudaFree(managed);
}

TEST_F(GpusimTest, MemsetOnPageableFails) {
  char host[64];
  EXPECT_EQ(cudaMemset(host, 0, 64), cudaError_t::cudaErrorInvalidValue);
}

// --- Events -------------------------------------------------------------------------

TEST_F(GpusimTest, EventRecordsStreamCompletion) {
  EventId ev;
  ASSERT_EQ(cudaEventCreate(&ev), cudaSuccess);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)cudaLaunchKernel(k);
  (void)cudaEventRecord(ev);
  (void)cudaEventSynchronize(ev);
  EXPECT_GE(now(), diog::ms(10));
  (void)cudaEventDestroy(ev);
}

TEST_F(GpusimTest, EventElapsedTime) {
  EventId start, end;
  (void)cudaEventCreate(&start);
  (void)cudaEventCreate(&end);
  (void)cudaEventRecord(start);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(15);
  (void)cudaLaunchKernel(k);
  (void)cudaEventRecord(end);
  (void)cudaEventSynchronize(end);
  float ms = 0;
  ASSERT_EQ(cudaEventElapsedTime(&ms, start, end), cudaSuccess);
  EXPECT_NEAR(ms, 15.0f, 1.0f);
  (void)cudaEventDestroy(start);
  (void)cudaEventDestroy(end);
}

TEST_F(GpusimTest, EventValidation) {
  EXPECT_EQ(cudaEventSynchronize(999),
            cudaError_t::cudaErrorInvalidResourceHandle);
  EXPECT_EQ(cudaEventDestroy(999),
            cudaError_t::cudaErrorInvalidResourceHandle);
  EventId ev;
  (void)cudaEventCreate(&ev);
  EXPECT_EQ(cudaEventRecord(ev, 999),
            cudaError_t::cudaErrorInvalidResourceHandle);
  (void)cudaEventDestroy(ev);
}

// --- Error state ----------------------------------------------------------------------

TEST_F(GpusimTest, GetLastErrorIsStickyAndClears) {
  EXPECT_EQ(cudaGetLastError(), cudaSuccess);
  (void)cudaMalloc(nullptr, 1);  // invalid
  EXPECT_EQ(cudaGetLastError(), cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaGetLastError(), cudaSuccess);  // cleared by the read
}

TEST_F(GpusimTest, MiscApis) {
  int device = -1;
  EXPECT_EQ(cudaGetDevice(&device), cudaSuccess);
  EXPECT_EQ(device, 0);
  EXPECT_EQ(cudaSetDevice(0), cudaSuccess);
  EXPECT_EQ(cudaSetDevice(3), cudaError_t::cudaErrorInvalidValue);
  cudaFuncAttributes attr;
  EXPECT_EQ(cudaFuncGetAttributes(&attr, reinterpret_cast<const void*>(1)),
            cudaSuccess);
  EXPECT_GT(attr.max_threads_per_block, 0);
}

// --- Private API -------------------------------------------------------------------

TEST_F(GpusimTest, PrivateApiPerformsSameOperations) {
  void* dev = priv::cuPrivMemAlloc(256);
  ASSERT_NE(dev, nullptr);
  char host[256] = {1, 2, 3};
  priv::cuPrivMemcpyHtoD(dev, host, 256);
  char back[256] = {};
  priv::cuPrivMemcpyDtoH(back, dev, 256);
  EXPECT_EQ(std::memcmp(host, back, 256), 0);

  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(5);
  priv::cuPrivLaunchKernel(k);
  priv::cuPrivSync();
  EXPECT_TRUE(rt_.device().idle());
  priv::cuPrivMemFree(dev);
}

TEST_F(GpusimTest, PrivateFreeSynchronizes) {
  void* dev = priv::cuPrivMemAlloc(64);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(12);
  (void)cudaLaunchKernel(k);
  priv::cuPrivMemFree(dev);
  EXPECT_GE(now(), diog::ms(12));
}

// --- Hook visibility of runtime internals -----------------------------------------

TEST_F(GpusimTest, InternalWaitHookSeesImplicitSyncs) {
  int wait_events = 0;
  Duration total_wait{0};
  Probe p;
  p.on_exit = [&](const diog::hooks::HookContext& ctx) {
    ++wait_events;
    total_wait += ctx.info->sync_wait;
  };
  rt_.hooks().attach(Fn::kInternalWaitForStream, p);

  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)cudaLaunchKernel(k);
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 16);
  (void)cudaFree(dev);  // implicit sync -> wait funnel fires
  EXPECT_GE(wait_events, 1);
  // The wait is the kernel's 10 ms minus the CPU time spent in the
  // malloc/free driver calls before blocking.
  EXPECT_GE(total_wait, diog::ms(9));
}

TEST_F(GpusimTest, ApiCallCountIncludesPrivate) {
  const auto before = rt_.api_call_count();
  void* dev = priv::cuPrivMemAlloc(16);
  priv::cuPrivMemFree(dev);
  (void)cudaDeviceSynchronize();
  EXPECT_EQ(rt_.api_call_count(), before + 3);
}

TEST_F(GpusimTest, CpuDilationScalesCpuWork) {
  rt_.set_cpu_dilation(3.0);
  const Duration before = now();
  cpu_work(diog::ms(10));
  EXPECT_EQ(now() - before, diog::ms(30));
  rt_.set_cpu_dilation(1.0);
}

TEST_F(GpusimTest, TimelineRecordsGroundTruth) {
  KernelDesc k;
  k.name = "my_kernel";
  k.duration = diog::ms(2);
  (void)cudaLaunchKernel(k);
  (void)cudaDeviceSynchronize();
  const auto& timeline = rt_.device().timeline();
  ASSERT_FALSE(timeline.empty());
  const GpuOp& op = timeline.back();
  EXPECT_EQ(op.kind, GpuOp::Kind::kKernel);
  EXPECT_EQ(op.name, "my_kernel");
  EXPECT_EQ(op.end - op.start, diog::ms(2));
  EXPECT_EQ(rt_.device().total_gpu_busy(), diog::ms(2));
}

// --- Probe mode -----------------------------------------------------------------------

TEST(GpusimProbeMode, InfiniteWaitTripsWatchdog) {
  Runtime rt;
  rt.set_probe_mode(true);
  RuntimeScope scope(rt);
  KernelDesc never;
  never.name = "never";
  never.duration = diog::kInfiniteDuration;
  (void)cudaLaunchKernel(never);
  EXPECT_THROW((void)cudaDeviceSynchronize(), ProbeTimeout);
}

TEST(GpusimProbeMode, InfiniteWaitOutsideProbeModeIsABug) {
  Runtime rt;
  RuntimeScope scope(rt);
  KernelDesc never;
  never.name = "never";
  never.duration = diog::kInfiniteDuration;
  (void)cudaLaunchKernel(never);
  EXPECT_THROW((void)cudaDeviceSynchronize(), diog::Error);
}

// --- Runtime scoping ---------------------------------------------------------------

TEST(RuntimeScoping, NoCurrentRuntimeThrows) {
  EXPECT_THROW(Runtime::current(), diog::Error);
  EXPECT_EQ(Runtime::current_or_null(), nullptr);
}

TEST(RuntimeScoping, ScopeActivatesAndResetsClock) {
  Runtime rt;
  rt.clock().advance(diog::ms(5));
  {
    RuntimeScope scope(rt);
    EXPECT_EQ(&Runtime::current(), &rt);
    EXPECT_EQ(rt.clock().now().count(), 0);  // reset at activation
  }
  EXPECT_EQ(Runtime::current_or_null(), nullptr);
}

// --- Vendor-library veneers ----------------------------------------------------------

TEST_F(GpusimTest, ThrustlikeTempStorageFreesPerCall) {
  const auto allocs_before = rt_.memory().total_allocations_made();
  thrustlike::reduce_into<float>(nullptr, 1000, nullptr);
  thrustlike::reduce_into<float>(nullptr, 1000, nullptr);
  // Two calls, two temporary allocations (each freed on exit).
  EXPECT_EQ(rt_.memory().total_allocations_made(), allocs_before + 2);
  EXPECT_TRUE(rt_.device().idle());  // the frees synchronized
}

TEST_F(GpusimTest, ThrustlikeTempPoolReuses) {
  thrustlike::TempPool pool;
  const auto allocs_before = rt_.memory().total_allocations_made();
  thrustlike::reduce_into<float>(nullptr, 1000, nullptr, &pool);
  thrustlike::reduce_into<float>(nullptr, 1000, nullptr, &pool);
  thrustlike::reduce_into<float>(nullptr, 500, nullptr, &pool);
  // One pool allocation serves all three calls.
  EXPECT_EQ(rt_.memory().total_allocations_made(), allocs_before + 1);
  (void)cudaDeviceSynchronize();
}

TEST_F(GpusimTest, BlaslikeUsesPrivateApi) {
  int private_calls = 0;
  Probe p;
  p.on_entry = [&](const diog::hooks::HookContext&) { ++private_calls; };
  for (std::size_t i = 0; i < diog::hooks::kFnCount; ++i) {
    const Fn f = static_cast<Fn>(i);
    if (diog::hooks::is_private_api(f)) rt_.hooks().attach(f, p);
  }
  blaslike::Handle h;
  blaslike::cholesky_solve_batched(h, nullptr, nullptr, 4, 8);
  blaslike::sync(h);
  EXPECT_GE(private_calls, 4);  // alloc + 2 launches + free + sync
}

}  // namespace
}  // namespace gpusim
