// The columnar event store: SoA storage, dictionaries, cursor pushdown,
// the allocation-free append contract, ring retention (flight-recorder
// mode), and the versioned binary run format (round-trip, live
// checkpointing, truncation/corruption handling, concurrent following,
// mmap-vs-stream equality, and live-vs-reopened byte identity of the
// analysis).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/diogenes.h"
#include "core/replay.h"
#include "core/report.h"
#include "eventstore/codecs.h"
#include "eventstore/cursor.h"
#include "eventstore/event_store.h"
#include "eventstore/live_writer.h"
#include "eventstore/run_io.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/error.h"
#include "trace/callstack.h"

// ---------------------------------------------------------------------------
// Global allocation counter. The append path's contract is "no per-event
// heap allocation"; counting every operator new in the binary is the
// only honest way to test it.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// Replacing global new/delete conflicts with the sanitizers' own
// allocator interposition (aligned-new flows through their runtime and
// trips alloc-dealloc-mismatch), so the counter is compiled out there —
// the zero-allocation assertion then passes trivially and the contract
// is enforced by the plain Release job and bench_eventstore.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DIOG_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DIOG_COUNT_ALLOCS 0
#endif
#endif
#ifndef DIOG_COUNT_ALLOCS
#define DIOG_COUNT_ALLOCS 1
#endif

#if DIOG_COUNT_ALLOCS
// GCC pairs the inlined replacement operator new with the libc free and
// reports -Wmismatched-new-delete at the definitions below; the pairing
// is intentional (new = malloc, delete = free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // DIOG_COUNT_ALLOCS

namespace diog::evstore {
namespace {

const trace::Frame* frame(int i) {
  return trace::FrameTable::instance().intern(
      "ev_fn_" + std::to_string(i), "ev.cpp", 100 + i);
}

Event op_event(std::uint64_t idx, std::int64_t t0, std::int64_t t1,
               hooks::Fn api = hooks::Fn::kCudaMemcpy) {
  Event e;
  e.kind = EventKind::kOp;
  e.set_fn(api);
  e.op_index = idx;
  e.t_start = t0;
  e.t_end = t1;
  return e;
}

TEST(EventStore, AppendAndReadBack) {
  EventStore store;
  const trace::Frame* frames[2] = {frame(0), frame(1)};

  Event e = op_event(0, 10, 20);
  e.stack = store.intern_stack(frames, 2);
  e.set(flag::kPerformedTransfer);
  e.set_direction(hooks::MemcpyKind::kHostToDevice);
  e.bytes = 4096;
  store.append(e);

  Event site;
  site.kind = EventKind::kSyncSite;
  site.set_fn(hooks::Fn::kCudaFree);
  site.value = 7;
  store.append(site);

  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.count_of(EventKind::kOp), 1u);
  EXPECT_EQ(store.count_of(EventKind::kSyncSite), 1u);

  const Event got = store.event(0);
  EXPECT_EQ(got.kind, EventKind::kOp);
  EXPECT_EQ(got.fn(), hooks::Fn::kCudaMemcpy);
  EXPECT_EQ(got.t_start, 10);
  EXPECT_EQ(got.t_end, 20);
  EXPECT_EQ(got.bytes, 4096u);
  EXPECT_TRUE(got.has(flag::kPerformedTransfer));
  EXPECT_EQ(got.direction(), hooks::MemcpyKind::kHostToDevice);
  EXPECT_EQ(store.stacks().depth(got.stack), 2u);
  EXPECT_EQ(store.stacks().leaf(got.stack), frames[1]);
  EXPECT_EQ(store.event(1).value, 7u);
}

TEST(EventStore, SegmentRollover) {
  EventStore store;
  const std::uint64_t n = kSegmentRows + kSegmentRows / 2;
  for (std::uint64_t i = 0; i < n; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
  }
  EXPECT_EQ(store.size(), n);
  EXPECT_EQ(store.segment_count(), 2u);
  // Spot-check both segments.
  EXPECT_EQ(store.event(0).op_index, 0u);
  EXPECT_EQ(store.event(kSegmentRows).op_index, kSegmentRows);
  EXPECT_EQ(store.event(n - 1).op_index, n - 1);
}

TEST(EventStore, StackInterningIsIdempotent) {
  EventStore store;
  const trace::Frame* frames[3] = {frame(0), frame(1), frame(2)};
  const StackId a = store.intern_stack(frames, 3);
  const StackId b = store.intern_stack(frames, 3);
  EXPECT_EQ(a, b);
  const StackId shorter = store.intern_stack(frames, 2);
  EXPECT_NE(a, shorter);
  EXPECT_EQ(store.intern_stack(frames, 0), kEmptyStack);
  // StackTrace-based interning agrees with the raw-pointer path.
  const trace::StackTrace st(
      std::vector<const trace::Frame*>(frames, frames + 3));
  EXPECT_EQ(store.intern_stack(st), a);
}

TEST(EventStore, NameInterning) {
  EventStore store;
  EXPECT_EQ(store.intern_name(""), kNoName);
  const NameId a = store.intern_name("stage2.trace");
  const NameId b = store.intern_name("stage2.trace");
  const NameId c = store.intern_name("stage3.hash");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(store.name(a), "stage2.trace");
  EXPECT_EQ(store.name(kNoName), "");
}

// The acceptance contract: appending an event whose stack is already
// interned performs zero heap allocations once the segment is open.
TEST(EventStore, AppendPathDoesNotAllocate) {
  EventStore store;
  const trace::Frame* frames[2] = {frame(0), frame(1)};
  // Open the first segment and warm the dictionaries.
  Event e = op_event(0, 0, 1);
  e.stack = store.intern_stack(frames, 2);
  store.append(e);

  const std::size_t before = g_allocations.load();
  for (std::uint64_t i = 1; i < 1000; ++i) {
    Event row = op_event(i, static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(i + 1));
    row.stack = store.intern_stack(frames, 2);  // known stack: probe only
    store.append(row);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "append of interned events must not touch the heap";
}

// ---------------------------------------------------------------------------
// Ring retention (flight-recorder mode).

TEST(EventStoreRing, EvictsWholeSegmentsFifo) {
  EventStore store;
  store.set_retention({.max_bytes = 0, .max_events = 2 * kSegmentRows});
  const std::uint64_t total = 5 * kSegmentRows + 123;
  for (std::uint64_t i = 0; i < total; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
  }
  // Eviction fires on each boundary crossing past the bound: segments
  // 3..6 each displace the then-oldest full segment.
  EXPECT_EQ(store.total_appended(), total);
  EXPECT_EQ(store.evicted_segments(), 4u);
  EXPECT_EQ(store.dropped_events(), 4 * kSegmentRows);
  EXPECT_EQ(store.first_index(), 4 * kSegmentRows);
  EXPECT_EQ(store.size(), total - 4 * kSegmentRows);
  // FIFO: the surviving window is the tail of the append stream, oldest
  // first.
  EXPECT_EQ(store.event(0).op_index, 4 * kSegmentRows);
  EXPECT_EQ(store.event(store.size() - 1).op_index, total - 1);
  // Append counters are monotonic (not decremented by eviction).
  EXPECT_EQ(store.count_of(EventKind::kOp), total);
  EXPECT_EQ(store.dropped_of(EventKind::kOp), 4 * kSegmentRows);
}

TEST(EventStoreRing, DropCountersAreExactUnderStress) {
  EventStore store;
  store.set_retention({.max_bytes = 0, .max_events = 2 * kSegmentRows});
  const std::uint64_t total = 1'000'000;
  for (std::uint64_t i = 0; i < total; ++i) {
    Event e;
    e.kind = static_cast<EventKind>(i % kEventKindCount);
    e.op_index = i;
    store.append(e);
  }
  EXPECT_EQ(store.total_appended(), total);
  // The evicted range is exactly [0, first_index): the per-kind tallies
  // must match the kinds appended there, no sampling, no estimate.
  const std::uint64_t evicted = store.first_index();
  EXPECT_EQ(evicted, store.evicted_segments() * kSegmentRows);
  std::uint64_t dropped_sum = 0;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const std::uint64_t expect =
        evicted / kEventKindCount + (k < evicted % kEventKindCount ? 1 : 0);
    EXPECT_EQ(store.dropped_of(static_cast<EventKind>(k)), expect)
        << "kind " << k;
    dropped_sum += store.dropped_of(static_cast<EventKind>(k));
  }
  EXPECT_EQ(dropped_sum, store.dropped_events());
  EXPECT_EQ(store.size() + store.dropped_events(), total);
}

TEST(EventStoreRing, SteadyStateRingAppendDoesNotAllocate) {
  EventStore store;
  store.set_retention({.max_bytes = 0, .max_events = 2 * kSegmentRows});
  // Warm up past several evictions: spare buffers populated, stats
  // vector at steady-state capacity, every metric interned.
  for (std::uint64_t i = 0; i < 4 * kSegmentRows; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
  }
  ASSERT_GE(store.evicted_segments(), 2u);
  const std::size_t before = g_allocations.load();
  for (std::uint64_t i = 0; i < 2 * kSegmentRows; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state ring append (including eviction) must recycle "
         "buffers, not allocate";
}

TEST(EventStoreRing, MaxBytesBoundsResidentMemory) {
  EventStore store;
  const std::uint64_t cap = 32ull * 1024 * 1024;
  store.set_retention({.max_bytes = cap, .max_events = 0});
  std::uint64_t hwm = 0;
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
    if (i % kSegmentRows == 0) hwm = std::max(hwm, store.bytes_reserved());
  }
  EXPECT_GE(store.evicted_segments(), 1u) << "test must actually evict";
  // The ring held the store under the bound the whole run (sampled at
  // the cold-path boundaries where reservation can change).
  EXPECT_LE(store.bytes_reserved(), cap);
  EXPECT_LE(hwm, cap + kSegmentRows * 128)
      << "one in-flight segment of slack at the boundary crossing";
  EXPECT_EQ(store.total_appended(), 1'000'000u);
}

TEST(EventStoreRing, SealCallbackFiresPerSegment) {
  EventStore store;
  int seals = 0;
  store.set_segment_seal_callback([&] { ++seals; });
  for (std::uint64_t i = 0; i < 3 * kSegmentRows + 5; ++i) {
    store.append(op_event(i, 0, 1));
  }
  // One seal per completed segment (the 4th is still filling).
  EXPECT_EQ(seals, 3);
  store.set_segment_seal_callback(nullptr);
}

TEST(Cursor, KindAndApiPredicates) {
  EventStore store;
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1),
                          i % 2 == 0 ? hooks::Fn::kCudaMemcpy
                                     : hooks::Fn::kCudaFree));
  }
  Event site;
  site.kind = EventKind::kSyncSite;
  store.append(site);

  EXPECT_EQ(ops(store).count(), 100u);
  EXPECT_EQ(sync_sites(store).count(), 1u);
  EXPECT_EQ(Cursor(store).kind(EventKind::kOp)
                .api(hooks::Fn::kCudaFree)
                .count(),
            50u);
  EXPECT_EQ(Cursor(store)
                .kinds({EventKind::kOp, EventKind::kSyncSite})
                .count(),
            101u);
}

TEST(Cursor, FlagAndTimePredicates) {
  EventStore store;
  for (std::uint64_t i = 0; i < 100; ++i) {
    Event e = op_event(i, static_cast<std::int64_t>(i * 10),
                       static_cast<std::int64_t>(i * 10 + 5));
    if (i % 4 == 0) e.set(flag::kPerformedSync);
    store.append(e);
  }
  EXPECT_EQ(Cursor(store).flags_all(flag::kPerformedSync).count(), 25u);
  EXPECT_EQ(Cursor(store).t_start_at_least(500).count(), 50u);
  EXPECT_EQ(Cursor(store).t_start_at_least(500).t_start_below(600).count(),
            10u);
  // Predicate composition.
  EXPECT_EQ(Cursor(store)
                .flags_all(flag::kPerformedSync)
                .t_start_below(400)
                .count(),
            10u);
}

TEST(Cursor, PushdownSkipsWholeSegments) {
  EventStore store;
  // Segment 0: kOp rows early in time. Segment 1: kInternalSpan rows
  // late in time.
  for (std::uint64_t i = 0; i < kSegmentRows; ++i) {
    store.append(op_event(i, static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i + 1)));
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    Event e;
    e.kind = EventKind::kInternalSpan;
    e.t_start = 1'000'000'000 + static_cast<std::int64_t>(i);
    e.t_end = e.t_start + 1;
    store.append(e);
  }
  ASSERT_EQ(store.segment_count(), 2u);

  Cursor by_kind = internal_spans(store);
  EXPECT_EQ(by_kind.count(), 100u);
  EXPECT_EQ(by_kind.segments_skipped(), 1u);

  Cursor by_time = Cursor(store).t_start_at_least(1'000'000'000);
  EXPECT_EQ(by_time.count(), 100u);
  EXPECT_EQ(by_time.segments_skipped(), 1u);

  Cursor no_match = Cursor(store).kind(EventKind::kPageFault);
  EXPECT_EQ(no_match.count(), 0u);
  EXPECT_EQ(no_match.segments_skipped(), 2u);
}

// ---------------------------------------------------------------------------
// Column codecs (format v3). The encoders/decoders are pure byte
// functions, so these are direct unit tests; the adversarial inputs
// mirror what the fuzzer's corpus throws at the full reader.

namespace {

std::vector<std::uint64_t> delta_round_trip(
    const std::vector<std::uint64_t>& vals) {
  std::string enc;
  std::vector<std::uint64_t> scratch(codec::kDeltaMiniblock);
  codec::put_delta_u64(enc, vals.data(), vals.size(), scratch.data());
  std::vector<std::uint64_t> out(vals.size());
  const auto* p = reinterpret_cast<const unsigned char*>(enc.data());
  codec::get_delta_u64(p, p + enc.size(), out.data(), vals.size());
  return out;
}

}  // namespace

TEST(Codec, VarintRoundTripsEdgeValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16'383,
                                 16'384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 63) - 1,
                                 1ull << 63,
                                 ~0ull};
  for (const std::uint64_t v : cases) {
    std::string enc;
    codec::put_varint(enc, v);
    const auto* p = reinterpret_cast<const unsigned char*>(enc.data());
    const unsigned char* end = p + enc.size();
    EXPECT_EQ(codec::get_varint(&p, end), v);
    EXPECT_EQ(p, end) << "varint for " << v << " left trailing bytes";
  }
}

TEST(Codec, VarintRejectsOverrunAndOverflow) {
  // Continuation bit set on the final available byte.
  const unsigned char torn[] = {0xFF, 0xFF};
  const unsigned char* p = torn;
  EXPECT_THROW((void)codec::get_varint(&p, torn + sizeof(torn)), Error);

  // Ten 0xFF bytes encode more than 64 bits.
  const unsigned char wide[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  p = wide;
  EXPECT_THROW((void)codec::get_varint(&p, wide + sizeof(wide)), Error);
}

TEST(Codec, DeltaRoundTripsRepresentativeSequences) {
  // Constant run: width-0 miniblocks, two bytes per 128 values.
  EXPECT_EQ(delta_round_trip(std::vector<std::uint64_t>(300, 42)),
            std::vector<std::uint64_t>(300, 42));

  // Monotone timestamps with jitter (the target workload).
  std::vector<std::uint64_t> ts;
  std::mt19937_64 rng(7);
  std::uint64_t t = 1'000'000;
  for (int i = 0; i < 1'000; ++i) {
    t += rng() % 97;
    ts.push_back(t);
  }
  EXPECT_EQ(delta_round_trip(ts), ts);

  // Decreasing and sign-flipping sequences exercise zigzag.
  std::vector<std::uint64_t> swing;
  for (int i = 0; i < 257; ++i) {
    swing.push_back(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(i % 2 == 0 ? i : -i) * 1'000));
  }
  EXPECT_EQ(delta_round_trip(swing), swing);

  // Deltas wider than kMaxPackedWidth force raw 8-byte miniblocks.
  const std::vector<std::uint64_t> jumps = {0, 1ull << 60, 5, ~0ull, 7};
  EXPECT_EQ(delta_round_trip(jumps), jumps);

  // Boundary counts: empty, single, exactly one miniblock + first.
  EXPECT_TRUE(delta_round_trip({}).empty());
  EXPECT_EQ(delta_round_trip({99}), (std::vector<std::uint64_t>{99}));
  std::vector<std::uint64_t> exact(1 + codec::kDeltaMiniblock);
  for (std::size_t i = 0; i < exact.size(); ++i) exact[i] = i * 3;
  EXPECT_EQ(delta_round_trip(exact), exact);
}

TEST(Codec, DeltaRejectsStructuralCorruption) {
  std::vector<std::uint64_t> vals(200);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i * 5;
  std::string enc;
  std::vector<std::uint64_t> scratch(codec::kDeltaMiniblock);
  codec::put_delta_u64(enc, vals.data(), vals.size(), scratch.data());
  std::vector<std::uint64_t> out(vals.size());

  const auto decode = [&](const std::string& bytes) {
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    codec::get_delta_u64(p, p + bytes.size(), out.data(), vals.size());
  };

  // Truncated mid-miniblock.
  EXPECT_THROW(decode(enc.substr(0, enc.size() - 2)), Error);
  // Trailing bytes after the final miniblock.
  EXPECT_THROW(decode(enc + '\0'), Error);
  // Invalid width 57..63 (first miniblock's width byte follows the
  // one-byte varint of first value zigzag(0) = 0).
  {
    std::string bad = enc;
    bad[1] = static_cast<char>(codec::kMaxPackedWidth + 1);
    EXPECT_THROW(decode(bad), Error);
  }
  // Nonzero padding bits in a final partial byte: three width-2 deltas
  // pack into one byte with two pad bits.
  {
    const std::vector<std::uint64_t> small = {0, 1, 2, 3};
    std::string senc;
    codec::put_delta_u64(senc, small.data(), small.size(), scratch.data());
    std::string bad = senc;
    bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] | 0x80);
    std::vector<std::uint64_t> sout(small.size());
    const auto* p = reinterpret_cast<const unsigned char*>(bad.data());
    EXPECT_THROW(codec::get_delta_u64(p, p + bad.size(), sout.data(),
                                      small.size()),
                 Error);
  }
}

// ---------------------------------------------------------------------------
// Binary run format.

class RunIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test: ctest runs each test as its own process,
    // in parallel, so a shared directory would let one test's TearDown
    // unlink files another has mmap'd.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("diog_evstore_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/run.dgtrace";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static TraceRun sample_run(std::uint64_t events = 500) {
    TraceRun run;
    run.meta.workload = "sample";
    run.meta.wait_fn = hooks::Fn::kCudaDeviceSynchronize;
    run.meta.s1_exec = ms(10);
    run.meta.s2_exec = ms(20);
    run.meta.s3_exec = ms(30);
    run.meta.s4_exec = ms(40);
    run.meta.transfers_hashed = 12;
    run.meta.bytes_hashed = 1 << 20;

    EventStore& store = *run.store;
    const trace::Frame* frames[3] = {frame(0), frame(1), frame(2)};
    for (std::uint64_t i = 0; i < events; ++i) {
      Event e;
      e.kind = static_cast<EventKind>(i % kEventKindCount);
      e.set_fn(i % 3 == 0 ? hooks::Fn::kCudaMemcpy : hooks::Fn::kCudaFree);
      e.stack = store.intern_stack(frames, 1 + i % 3);
      e.name = i % 7 == 0
                   ? store.intern_name("span_" + std::to_string(i % 5))
                   : kNoName;
      e.op_index = i;
      e.t_start = static_cast<std::int64_t>(i * 3);
      e.t_end = e.t_start + 2;
      e.aux_time = static_cast<std::int64_t>(i % 11);
      e.bytes = i * 17;
      e.value = i * 31 + 1;
      e.link = i / 2;
      if (i % 2 == 0) e.set(flag::kPerformedSync);
      store.append(e);
    }
    return run;
  }

  // Field-by-field store equality (dictionaries resolved, not id-based).
  static void expect_equal(const TraceRun& a, const TraceRun& b) {
    EXPECT_EQ(a.meta.to_json().dump(), b.meta.to_json().dump());
    const EventStore& sa = *a.store;
    const EventStore& sb = *b.store;
    ASSERT_EQ(sa.size(), sb.size());
    for (std::uint64_t i = 0; i < sa.size(); ++i) {
      const Event ea = sa.event(i);
      const Event eb = sb.event(i);
      EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
      EXPECT_EQ(ea.api, eb.api) << "event " << i;
      EXPECT_EQ(ea.flags, eb.flags) << "event " << i;
      EXPECT_EQ(ea.stream, eb.stream) << "event " << i;
      EXPECT_EQ(ea.op_index, eb.op_index) << "event " << i;
      EXPECT_EQ(ea.t_start, eb.t_start) << "event " << i;
      EXPECT_EQ(ea.t_end, eb.t_end) << "event " << i;
      EXPECT_EQ(ea.aux_time, eb.aux_time) << "event " << i;
      EXPECT_EQ(ea.gpu_time, eb.gpu_time) << "event " << i;
      EXPECT_EQ(ea.bytes, eb.bytes) << "event " << i;
      EXPECT_EQ(ea.value, eb.value) << "event " << i;
      EXPECT_EQ(ea.link, eb.link) << "event " << i;
      EXPECT_EQ(sa.name(ea.name), sb.name(eb.name)) << "event " << i;
      ASSERT_EQ(sa.stacks().depth(ea.stack), sb.stacks().depth(eb.stack))
          << "event " << i;
      for (std::size_t d = 0; d < sa.stacks().depth(ea.stack); ++d) {
        // Frames re-intern through the process-global table, so pointer
        // equality is exact across a save/open cycle in one process.
        EXPECT_EQ(sa.stacks().frame(ea.stack, d),
                  sb.stacks().frame(eb.stack, d))
            << "event " << i << " frame " << d;
      }
    }
  }

  std::string dir_;
  std::string path_;
};

TEST_F(RunIoTest, RoundTripPreservesEverything) {
  const TraceRun run = sample_run();
  save_run(path_, run);
  const TraceRun back = open_run(path_);
  expect_equal(run, back);
}

TEST_F(RunIoTest, RoundTripAcrossSegmentBoundary) {
  const TraceRun run = sample_run(kSegmentRows + 100);
  save_run(path_, run);
  const TraceRun back = open_run(path_);
  ASSERT_EQ(back.store->segment_count(), 2u);
  expect_equal(run, back);
}

TEST_F(RunIoTest, MmapAndStreamReadersAgree) {
  save_run(path_, sample_run());
  const TraceRun streamed = open_run(path_, ReadMode::kStream);
  TraceRun mapped;
  try {
    mapped = open_run(path_, ReadMode::kMmap);
  } catch (const Error&) {
    GTEST_SKIP() << "mmap unavailable on this platform";
  }
  expect_equal(streamed, mapped);
  expect_equal(streamed, open_run(path_, ReadMode::kAuto));
}

TEST_F(RunIoTest, SaveCreatesMissingDirectories) {
  const std::string nested = dir_ + "/a/b/run.dgtrace";
  save_run(nested, sample_run(10));
  EXPECT_EQ(open_run(nested).store->size(), 10u);
}

TEST_F(RunIoTest, RandomizedRoundTripProperty) {
  std::mt19937_64 gen(20260805);
  for (int iter = 0; iter < 8; ++iter) {
    TraceRun run;
    run.meta.workload = "prop_" + std::to_string(iter);
    EventStore& store = *run.store;
    const std::uint64_t n = gen() % 2000;
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e;
      e.kind = static_cast<EventKind>(gen() % kEventKindCount);
      e.api = static_cast<std::uint16_t>(gen() %
                                         static_cast<int>(hooks::Fn::kCount_));
      e.flags = static_cast<std::uint32_t>(gen());
      e.stream = static_cast<std::uint32_t>(gen() % 4);
      const trace::Frame* frames[4];
      const std::size_t depth = gen() % 5;
      for (std::size_t d = 0; d < depth; ++d) {
        frames[d] = frame(static_cast<int>(gen() % 16));
      }
      e.stack = store.intern_stack(frames, depth);
      if (gen() % 4 == 0) {
        std::string nm = "n";  // built in two steps: GCC 12 -Wrestrict FP
        nm += std::to_string(gen() % 8);
        e.name = store.intern_name(nm);
      }
      e.op_index = gen();
      e.t_start = static_cast<std::int64_t>(gen());
      e.t_end = static_cast<std::int64_t>(gen());
      e.aux_time = static_cast<std::int64_t>(gen());
      e.gpu_time = static_cast<std::int64_t>(gen());
      e.bytes = gen();
      e.value = gen();
      e.link = gen();
      store.append(e);
    }
    save_run(path_, run);
    expect_equal(run, open_run(path_));
  }
}

// --- Corruption handling ---------------------------------------------------
// Every failure mode must surface as a clean diog::Error, never UB.

namespace {

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string error_of(const std::string& path, ReadMode mode) {
  try {
    (void)open_run(path, mode);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

}  // namespace

TEST_F(RunIoTest, MissingFileThrows) {
  EXPECT_THROW((void)open_run(dir_ + "/nope.dgtrace"), Error);
}

TEST_F(RunIoTest, TooSmallFileThrows) {
  spit(path_, {'D', 'I', 'O', 'G'});
  for (const ReadMode m : {ReadMode::kAuto, ReadMode::kStream}) {
    const std::string msg = error_of(path_, m);
    EXPECT_NE(msg, "") << "short file must throw";
  }
}

TEST_F(RunIoTest, WrongMagicThrows) {
  save_run(path_, sample_run(50));
  std::vector<char> bytes = slurp(path_);
  bytes[0] = 'X';
  spit(path_, bytes);
  const std::string msg = error_of(path_, ReadMode::kAuto);
  EXPECT_NE(msg.find("not a diogenes run file"), std::string::npos) << msg;
}

TEST_F(RunIoTest, WrongVersionThrows) {
  save_run(path_, sample_run(50));
  std::vector<char> bytes = slurp(path_);
  bytes[8] = 99;  // version u32 little-endian low byte
  spit(path_, bytes);
  const std::string msg = error_of(path_, ReadMode::kAuto);
  EXPECT_NE(msg.find("unsupported run file version"), std::string::npos)
      << msg;
}

TEST_F(RunIoTest, TruncatedHeaderThrows) {
  save_run(path_, sample_run(200));
  const std::vector<char> bytes = slurp(path_);
  // A file shorter than the 16-byte header cannot even be identified;
  // that stays a hard error.
  spit(path_, std::vector<char>(bytes.begin(), bytes.begin() + 10));
  for (const ReadMode m : {ReadMode::kAuto, ReadMode::kStream}) {
    EXPECT_NE(error_of(path_, m), "");
  }
}

TEST_F(RunIoTest, TruncatedTailYieldsReadablePrefix) {
  // Crash-consistency: a writer killed mid-chunk or mid-footer leaves a
  // torn tail; everything before it must open cleanly.
  save_run(path_, sample_run(200));
  const std::vector<char> bytes = slurp(path_);
  // Layout: 16B header | one chunk | 48B footer. Cuts before the chunk
  // completes yield an empty prefix; a cut inside the footer yields the
  // complete chunk.
  const std::size_t chunk_end = bytes.size() - 48;
  for (const std::size_t keep :
       {std::size_t{17}, bytes.size() / 4, bytes.size() / 2,
        bytes.size() - 9}) {
    spit(path_, std::vector<char>(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<std::ptrdiff_t>(keep)));
    for (const ReadMode m : {ReadMode::kAuto, ReadMode::kStream}) {
      RunFileInfo info;
      const TraceRun run = open_run(path_, m, &info);
      EXPECT_FALSE(info.clean) << "keep=" << keep;
      EXPECT_FALSE(info.finalized) << "keep=" << keep;
      const std::uint64_t expect_events = keep >= chunk_end ? 200u : 0u;
      EXPECT_EQ(run.store->size(), expect_events) << "keep=" << keep;
      EXPECT_EQ(info.events, expect_events) << "keep=" << keep;
    }
  }
}

TEST_F(RunIoTest, CorruptedPayloadFailsChecksum) {
  save_run(path_, sample_run(200));
  std::vector<char> bytes = slurp(path_);
  // A byte flip inside a *complete* chunk is corruption, not a torn
  // tail: chunks are immutable once written, so this stays a hard error.
  bytes[bytes.size() / 2] ^= 0x5a;
  spit(path_, bytes);
  const std::string msg = error_of(path_, ReadMode::kAuto);
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
}

// --- Live (incremental) run files ------------------------------------------

namespace {

// Events with per-index dictionary churn so chunks exercise the
// incremental frame/stack/name serialization.
void append_varied(TraceRun& run, std::uint64_t first, std::uint64_t count) {
  EventStore& store = *run.store;
  for (std::uint64_t i = first; i < first + count; ++i) {
    Event e;
    e.kind = static_cast<EventKind>(i % kEventKindCount);
    e.set_fn(hooks::Fn::kCudaMemcpy);
    const trace::Frame* frames[2] = {frame(static_cast<int>(i % 16)),
                                     frame(static_cast<int>(i % 5))};
    e.stack = store.intern_stack(frames, 2);
    if (i % 9 == 0) {
      e.name = store.intern_name("live_" + std::to_string(i % 13));
    }
    e.op_index = i;
    e.t_start = static_cast<std::int64_t>(i * 7);
    e.t_end = e.t_start + 3;
    e.bytes = i * 5;
    store.append(e);
  }
}

}  // namespace

TEST_F(RunIoTest, LiveWriterCheckpointsAreReadablePrefixes) {
  TraceRun run;
  run.meta.workload = "live";
  LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  LiveRunWriter w(path_, opts);

  append_varied(run, 0, 100);
  w.checkpoint(run, /*force=*/true);
  {
    // Open while the writer is still attached: clean, not finalized.
    RunFileInfo info;
    const TraceRun back = open_run(path_, ReadMode::kAuto, &info);
    EXPECT_TRUE(info.clean);
    EXPECT_FALSE(info.finalized);
    EXPECT_EQ(info.chunks, 1u);
    EXPECT_EQ(back.store->size(), 100u);
  }

  append_varied(run, 100, 150);
  w.checkpoint(run, /*force=*/true);
  {
    RunFileInfo info;
    const TraceRun back = open_run(path_, ReadMode::kAuto, &info);
    EXPECT_EQ(info.chunks, 2u);
    EXPECT_EQ(back.store->size(), 250u);
    EXPECT_FALSE(info.finalized);
  }

  w.finish(run);
  RunFileInfo info;
  const TraceRun back = open_run(path_, ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_EQ(info.dropped_before_checkpoint, 0u);
  expect_equal(run, back);
}

TEST_F(RunIoTest, LiveWriterTornTailKeepsCheckpointedPrefix) {
  TraceRun run;
  run.meta.workload = "torn";
  LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  {
    LiveRunWriter w(path_, opts);
    append_varied(run, 0, 300);
    w.checkpoint(run, /*force=*/true);
    append_varied(run, 300, 200);
    w.checkpoint(run, /*force=*/true);
    // Destructor closes WITHOUT finalizing: crash semantics.
  }
  // Simulate a crash mid-write on top of that: chop off the footer and
  // the tail of the second chunk.
  std::vector<char> bytes = slurp(path_);
  spit(path_, std::vector<char>(bytes.begin(),
                                bytes.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        bytes.size() - 60)));
  RunFileInfo info;
  const TraceRun back = open_run(path_, ReadMode::kAuto, &info);
  EXPECT_FALSE(info.finalized);
  // The first checkpoint survived whole; the torn second chunk is
  // ignored.
  EXPECT_EQ(back.store->size(), 300u);
  EXPECT_EQ(info.chunks, 1u);
  EXPECT_EQ(back.store->event(0).op_index, 0u);
}

TEST_F(RunIoTest, RingEvictionGapsAreRecordedAsDropped) {
  TraceRun run;
  run.meta.workload = "ring";
  run.store->set_retention({.max_bytes = 0, .max_events = 2 * kSegmentRows});
  LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  LiveRunWriter w(path_, opts);
  // Three segments appended, none checkpointed: the first is evicted
  // before it ever reaches the file.
  for (std::uint64_t i = 0; i < 3 * kSegmentRows; ++i) {
    run.store->append(op_event(i, static_cast<std::int64_t>(i),
                               static_cast<std::int64_t>(i + 1)));
  }
  ASSERT_EQ(run.store->dropped_events(), kSegmentRows);
  w.finish(run);

  RunFileInfo info;
  const TraceRun back = open_run(path_, ReadMode::kAuto, &info);
  // The reader recomputes the loss from the chunk index gap, and the
  // writer recorded it in the meta — both see the same number.
  EXPECT_EQ(info.dropped_before_checkpoint, kSegmentRows);
  EXPECT_EQ(back.meta.dropped_events, kSegmentRows);
  EXPECT_EQ(back.store->size(), 2 * kSegmentRows);
  // The file holds the surviving window, oldest first.
  EXPECT_EQ(back.store->event(0).op_index, kSegmentRows);
}

TEST_F(RunIoTest, FollowerSeesWriterProgressIncrementally) {
  TraceRun run;
  run.meta.workload = "followed";
  LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  LiveRunWriter w(path_, opts);
  RunFollower follower(path_);

  append_varied(run, 0, 40);
  w.checkpoint(run, /*force=*/true);
  EXPECT_EQ(follower.poll(), 40u);

  append_varied(run, 40, 25);
  w.checkpoint(run, /*force=*/true);
  EXPECT_EQ(follower.poll(), 25u);
  EXPECT_FALSE(follower.finalized());

  append_varied(run, 65, 10);
  w.finish(run);
  EXPECT_EQ(follower.poll(), 10u);
  EXPECT_TRUE(follower.finalized());
  expect_equal(run, follower.run());
}

TEST_F(RunIoTest, FollowerToleratesMissingFile) {
  RunFollower follower(dir_ + "/not_yet.dgtrace");
  EXPECT_EQ(follower.poll(), 0u);
  EXPECT_FALSE(follower.finalized());
}

TEST_F(RunIoTest, ConcurrentWriterAndFollowerNeverTear) {
  constexpr std::uint64_t kTotal = 200'000;
  constexpr std::uint64_t kPerCheckpoint = 10'000;
  std::thread writer([&] {
    TraceRun run;
    run.meta.workload = "concurrent";
    LiveRunWriter::Options opts;
    opts.fsync_checkpoints = false;
    LiveRunWriter w(path_, opts);
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      run.store->append(op_event(i, static_cast<std::int64_t>(i),
                                 static_cast<std::int64_t>(i + 1)));
      if ((i + 1) % kPerCheckpoint == 0) w.checkpoint(run, /*force=*/true);
    }
    w.finish(run);
  });

  // The follower must only ever observe whole chunks: every poll either
  // adds complete checkpoints or nothing, and never throws on the
  // in-flight tail.
  RunFollower follower(path_);
  std::uint64_t seen = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    seen += follower.poll();
    if (follower.finalized()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "follower never saw the finalized footer";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  EXPECT_EQ(seen, kTotal);
  EXPECT_EQ(follower.run().store->size(), kTotal);
  // Spot-check ordering survived the chunked transport.
  EXPECT_EQ(follower.run().store->event(0).op_index, 0u);
  EXPECT_EQ(follower.run().store->event(kTotal - 1).op_index, kTotal - 1);
}

// ---------------------------------------------------------------------------
// Acceptance: the analysis is byte-identical whether fed the in-memory
// run or a saved-and-reopened one.

namespace {

ffm::Workload store_workload() {
  auto out = std::make_shared<gpusim::HostBuffer<float>>(4096);
  ffm::Workload w;
  w.name = "evstore_wl";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    DIOG_APP_FRAME("evstore_main", "ev.cu", 3);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    for (int i = 0; i < 5; ++i) {
      DIOG_APP_FRAME("loop", "ev.cu", 10);
      gpusim::KernelDesc k;
      k.name = "k";
      k.duration = ms(4);
      (void)gpusim::cudaLaunchKernel(k);
      gpusim::cpu_work(ms(5));
      (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                               hooks::MemcpyKind::kDeviceToHost);
      volatile float v = (*out)[0];
      (void)v;
    }
    (void)gpusim::cudaFree(dev);
  };
  return w;
}

}  // namespace

TEST_F(RunIoTest, ReopenedRunAnalyzesByteIdentically) {
  ffm::ToolConfig cfg;
  cfg.trace_dir = dir_;
  ffm::Diogenes tool(store_workload(), cfg);
  const ffm::AnalysisResult live = tool.analyze();

  const std::string file = run_file_path(dir_, "evstore_wl");
  ASSERT_TRUE(ffm::has_run_file(dir_, "evstore_wl"));
  const ffm::AnalysisResult reopened = ffm::analyze_run_file(file, cfg);

  EXPECT_EQ(ffm::export_json(reopened).dump(), ffm::export_json(live).dump());
  EXPECT_EQ(ffm::render_overview(reopened), ffm::render_overview(live));
  EXPECT_EQ(ffm::render_run_stat(reopened.run),
            ffm::render_run_stat(live.run));
}

TEST_F(RunIoTest, TraceStatReportsPerChunkEncodingAndRatio) {
  ffm::ToolConfig cfg;
  cfg.trace_dir = dir_;
  ffm::Diogenes tool(store_workload(), cfg);
  (void)tool.analyze();

  evstore::RunFileInfo info;
  (void)open_run(run_file_path(dir_, "evstore_wl"),
                 evstore::ReadMode::kAuto, &info);
  ASSERT_EQ(info.format_version, 3u);
  ASSERT_FALSE(info.chunk_stats.empty());

  const std::string out = ffm::render_run_file_info(info);
  EXPECT_NE(out.find("format: v3"), std::string::npos) << out;
  EXPECT_NE(out.find("chunk 0: coded"), std::string::npos) << out;
  EXPECT_NE(out.find(" stored / "), std::string::npos) << out;
  EXPECT_NE(out.find("x)"), std::string::npos) << out;
}

TEST_F(RunIoTest, AnalyzeDirPrefersBinaryRun) {
  ffm::ToolConfig cfg;
  cfg.trace_dir = dir_;
  cfg.stage_dir = dir_;  // both representations on disk
  ffm::Diogenes tool(store_workload(), cfg);
  const ffm::AnalysisResult live = tool.analyze();

  const ffm::AnalysisResult offline = ffm::analyze_dir(dir_, "evstore_wl", cfg);
  EXPECT_EQ(ffm::export_json(offline).dump(), ffm::export_json(live).dump());
  // And without the binary file it still works from stage JSON.
  std::filesystem::remove(run_file_path(dir_, "evstore_wl"));
  const ffm::AnalysisResult json_only =
      ffm::analyze_dir(dir_, "evstore_wl", cfg);
  EXPECT_EQ(json_only.benefit.total, live.benefit.total);
}

}  // namespace
}  // namespace diog::evstore
