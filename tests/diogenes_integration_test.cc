// End-to-end tests of the full five-stage pipeline, report rendering,
// and JSON export on synthetic workloads.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/diogenes.h"
#include "support/error.h"
#include "core/report.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::HostBuffer;
using gpusim::KernelDesc;
using hooks::Fn;
using hooks::MemcpyKind;

// A compact app with all three problem types, ground truth by design:
//  - a duplicate H2D upload each iteration (unnecessary transfer);
//  - per-iteration cudaFree while kernels run (unnecessary sync, with a
//    wide CPU window after it -> recoverable);
//  - a deviceSynchronize immediately before the readback (unnecessary,
//    near-zero benefit: the readback's own sync absorbs the wait);
//  - the readback's implicit sync is required (data consumed).
struct SyntheticApp {
  std::shared_ptr<HostBuffer<float>> tile =
      std::make_shared<HostBuffer<float>>(64 * 1024);
  std::shared_ptr<HostBuffer<float>> out =
      std::make_shared<HostBuffer<float>>(16 * 1024);
  int iterations = 8;

  void operator()() const {
    DIOG_APP_FRAME("synthetic_main", "synth.cc", 10);
    void* d_tile = nullptr;
    void* d_out = nullptr;
    void* d_temp = nullptr;
    (void)gpusim::cudaMalloc(&d_tile, tile->size_bytes());
    (void)gpusim::cudaMalloc(&d_out, out->size_bytes());
    (void)gpusim::cudaMalloc(&d_temp, 4096);

    for (int i = 0; i < iterations; ++i) {
      DIOG_APP_FRAME("iteration", "synth.cc", 20);
      {
        DIOG_APP_FRAME("upload", "synth.cc", 25);
        (void)gpusim::cudaMemcpy(d_tile, tile->data(), tile->size_bytes(),
                                 MemcpyKind::kHostToDevice);  // duplicate!
      }
      KernelDesc k;
      k.name = "compute";
      k.duration = ms(6);
      float* o = static_cast<float*>(d_out);
      k.body = [o, i] { o[0] = static_cast<float>(i); };
      (void)gpusim::cudaLaunchKernel(k);
      {
        DIOG_APP_FRAME("teardown", "synth.cc", 33);
        (void)gpusim::cudaFree(d_temp);  // waits on `compute`
      }
      (void)gpusim::cudaMalloc(&d_temp, 4096);
      gpusim::cpu_work(ms(8));  // wide window: the free is recoverable
      {
        DIOG_APP_FRAME("pre_read_sync", "synth.cc", 40);
        (void)gpusim::cudaDeviceSynchronize();  // near-zero benefit
      }
      {
        DIOG_APP_FRAME("readback", "synth.cc", 44);
        (void)gpusim::cudaMemcpy(out->data(), d_out, out->size_bytes(),
                                 MemcpyKind::kDeviceToHost);  // required
      }
      volatile float v = (*out)[0];
      (void)v;
    }
    (void)gpusim::cudaFree(d_tile);
    (void)gpusim::cudaFree(d_out);
    (void)gpusim::cudaFree(d_temp);
  }
};

Workload synthetic_workload() {
  Workload w;
  w.name = "synthetic";
  w.device = gpusim::DeviceConfig{};
  w.body = SyntheticApp{};
  return w;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Diogenes tool(synthetic_workload());
    result_ = new AnalysisResult(tool.analyze());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static AnalysisResult* result_;
};

AnalysisResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, AllStagesRan) {
  EXPECT_EQ(result_->s1.wait_fn, Fn::kInternalWaitForStream);
  EXPECT_GT(result_->s1.exec_time.count(), 0);
  EXPECT_FALSE(result_->s2.ops.empty());
  EXPECT_FALSE(result_->s3.syncs.empty());
  EXPECT_FALSE(result_->s4.uses.empty());
  EXPECT_GT(result_->graph.size(), 0u);
}

TEST_F(IntegrationTest, HiddenFreeSyncDiscovered) {
  bool free_site = false;
  for (const SyncSite& s : result_->s1.sync_sites) {
    if (s.api == Fn::kCudaFree) free_site = true;
  }
  EXPECT_TRUE(free_site);
}

TEST_F(IntegrationTest, DuplicateUploadsFlagged) {
  // 7 of the 8 identical uploads are duplicates.
  EXPECT_EQ(result_->s3.duplicate_transfers.size(), 7u);
}

TEST_F(IntegrationTest, FreeBenefitDominatesDeviceSyncBenefit) {
  // The headline behaviour: consumption says deviceSynchronize is
  // expensive, benefit analysis says fixing it is worthless next to the
  // hidden frees.
  Duration free_savings{0};
  Duration sync_savings{0};
  for (const auto& s : result_->api_savings()) {
    if (s.api == Fn::kCudaFree) free_savings = s.savings;
    if (s.api == Fn::kCudaDeviceSynchronize) sync_savings = s.savings;
  }
  EXPECT_GT(free_savings, ms(30));  // ~6 ms x 8 iterations, minus slack
  EXPECT_LT(sync_savings, free_savings / 5);
}

TEST_F(IntegrationTest, TotalBenefitBounded) {
  EXPECT_GT(result_->benefit.total.count(), 0);
  EXPECT_LT(result_->benefit.total, result_->exec_time());
  EXPECT_EQ(result_->benefit.total,
            result_->benefit.sync_benefit + result_->benefit.transfer_benefit);
}

TEST_F(IntegrationTest, SequencesMergeAcrossIterations) {
  ASSERT_FALSE(result_->sequences.empty());
  const Group& top = result_->sequences[0];
  EXPECT_GE(top.instances.size(), 7u);  // one per loop iteration
}

TEST_F(IntegrationTest, OverheadFactorReflectsMultiRunCost) {
  // Four collection runs, one heavily instrumented: well above 4x, below
  // the paper's worst case neighborhood.
  EXPECT_GT(result_->overhead_factor, 4.0);
  EXPECT_LT(result_->overhead_factor, 30.0);
}

TEST_F(IntegrationTest, ReportRendering) {
  const std::string overview = render_overview(*result_);
  EXPECT_NE(overview.find("Diogenes Overview Display"), std::string::npos);
  EXPECT_NE(overview.find("Fold on cudaFree"), std::string::npos);
  EXPECT_NE(overview.find("% of execution time"), std::string::npos);

  ASSERT_FALSE(result_->folds.empty());
  const std::string expansion =
      render_fold_expansion(*result_, result_->folds[0]);
  EXPECT_FALSE(expansion.empty());

  ASSERT_FALSE(result_->sequences.empty());
  const std::string seq = render_sequence(*result_, result_->sequences[0]);
  EXPECT_NE(seq.find("Time Recoverable:"), std::string::npos);
  EXPECT_NE(seq.find("Number of Sync Issues:"), std::string::npos);
  EXPECT_NE(seq.find("1. "), std::string::npos);

  const std::string api = render_api_savings(*result_);
  EXPECT_NE(api.find("cudaFree"), std::string::npos);
}

TEST_F(IntegrationTest, SubsequenceRefinementWithoutNewCollection) {
  ASSERT_FALSE(result_->sequences.empty());
  const Group& seq = result_->sequences[0];
  const auto entries = sequence_entries(result_->graph, seq);
  ASSERT_GE(entries.size(), 2u);
  const Group sub =
      subsequence(result_->graph, seq, 2, entries.size());
  EXPECT_LE(sub.benefit, seq.benefit);
  const std::string text =
      render_subsequence(*result_, sub, 2, entries.size());
  EXPECT_NE(text.find("Time Recoverable In Subsequence:"),
            std::string::npos);
}

TEST_F(IntegrationTest, JsonExportComplete) {
  const json::Value v = export_json(*result_);
  EXPECT_EQ(v.at("workload").as_string(), "synthetic");
  EXPECT_GT(v.at("total_benefit_ns").as_int(), 0);
  EXPECT_GT(v.at("overhead_factor").as_double(), 1.0);
  EXPECT_GT(v.at("folds").size(), 0u);
  EXPECT_GT(v.at("sequences").size(), 0u);
  EXPECT_GT(v.at("api_savings").size(), 0u);
  // Valid JSON end-to-end.
  EXPECT_NO_THROW((void)json::parse(v.dump_pretty()));
}

TEST_F(IntegrationTest, DeterministicAcrossAnalyses) {
  Diogenes tool(synthetic_workload());
  const AnalysisResult again = tool.analyze();
  EXPECT_EQ(again.benefit.total, result_->benefit.total);
  EXPECT_EQ(again.s2.ops.size(), result_->s2.ops.size());
  EXPECT_EQ(again.s3.duplicate_transfers.size(),
            result_->s3.duplicate_transfers.size());
}

TEST(DiogenesDriver, PersistsStageFilesWhenConfigured) {
  const auto dir =
      std::filesystem::temp_directory_path() / "diog_stage_test";
  std::filesystem::create_directories(dir);
  ToolConfig cfg;
  cfg.stage_dir = dir.string();
  Workload w = synthetic_workload();
  w.name = "persist";
  Diogenes tool(w, cfg);
  (void)tool.analyze();
  for (const char* stage : {"stage1", "stage2", "stage3", "stage4"}) {
    const auto path = dir / (std::string("persist_") + stage + ".json");
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_NO_THROW((void)json::load_file(path.string()));
  }
  std::filesystem::remove_all(dir);
}

TEST(DiogenesDriver, WorkloadWithoutBodyRejected) {
  Workload w;
  w.name = "empty";
  EXPECT_THROW(Diogenes{w}, Error);
}

TEST(DiogenesDriver, CleanWorkloadReportsNothing) {
  // An app with overlap done right: only healthy syncs.
  auto out = std::make_shared<HostBuffer<float>>(1024);
  Workload w;
  w.name = "clean";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    KernelDesc k;
    k.name = "k";
    k.duration = ms(1);
    (void)gpusim::cudaLaunchKernel(k);
    gpusim::cpu_work(ms(2));  // overlap instead of waiting
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    volatile float v = (*out)[0];
    (void)v;
    (void)gpusim::cudaFree(dev);
  };
  Diogenes tool(w);
  const AnalysisResult r = tool.analyze();
  // The readback's sync is required with immediate use; the final free
  // waits on nothing. Total estimated benefit is negligible.
  EXPECT_LT(r.benefit.total, ms(1));
}

}  // namespace
}  // namespace diog::ffm
