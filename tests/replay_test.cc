// Offline replay: the analysis stage re-run from persisted JSON must
// reproduce the live pipeline's results exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "core/replay.h"
#include "core/report.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/error.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::HostBuffer;
using gpusim::KernelDesc;
using hooks::MemcpyKind;

Workload replay_workload() {
  auto out = std::make_shared<HostBuffer<float>>(4096);
  Workload w;
  w.name = "replayee";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    DIOG_APP_FRAME("replay_main", "rp.cu", 3);
    void* dev = nullptr;
    void* tmp = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    for (int i = 0; i < 6; ++i) {
      DIOG_APP_FRAME("loop", "rp.cu", 10);
      KernelDesc k;
      k.name = "k";
      k.duration = ms(4);
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaMalloc(&tmp, 64);
      (void)gpusim::cudaFree(tmp);  // hidden sync
      gpusim::cpu_work(ms(5));
      (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                               MemcpyKind::kDeviceToHost);
      volatile float v = (*out)[0];
      (void)v;
    }
    (void)gpusim::cudaFree(dev);
  };
  return w;
}

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test: ctest runs tests as parallel processes,
    // and a shared directory lets one test's TearDown delete stage
    // files another test is mid-way through writing or loading.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("diog_replay_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ReplayTest, OfflineAnalysisMatchesLiveExactly) {
  ToolConfig cfg;
  cfg.stage_dir = dir_;
  Diogenes tool(replay_workload(), cfg);
  const AnalysisResult live = tool.analyze();

  const StageBundle bundle = load_stage_files(dir_, "replayee");
  const AnalysisResult offline = analyze_offline(bundle, cfg);

  EXPECT_EQ(offline.benefit.total, live.benefit.total);
  EXPECT_EQ(offline.benefit.sync_benefit, live.benefit.sync_benefit);
  EXPECT_EQ(offline.folds.size(), live.folds.size());
  EXPECT_EQ(offline.sequences.size(), live.sequences.size());
  EXPECT_EQ(offline.overhead_factor, live.overhead_factor);
  EXPECT_EQ(export_json(offline).dump(), export_json(live).dump());
}

TEST_F(ReplayTest, SubsequenceRefinementWorksOffline) {
  ToolConfig cfg;
  cfg.stage_dir = dir_;
  Diogenes tool(replay_workload(), cfg);
  (void)tool.analyze();

  // A fresh process (modeled here as a fresh analysis from disk) can
  // refine subsequences without the application ever existing.
  const AnalysisResult offline =
      analyze_offline(load_stage_files(dir_, "replayee"), cfg);
  ASSERT_FALSE(offline.sequences.empty());
  const Group& seq = offline.sequences[0];
  const auto entries = sequence_entries(offline.graph, seq);
  ASSERT_GE(entries.size(), 1u);
  const Group sub = subsequence(offline.graph, seq, 1, entries.size());
  EXPECT_EQ(sub.benefit, seq.benefit);
}

TEST_F(ReplayTest, DifferentThresholdChangesOfflineClassification) {
  ToolConfig cfg;
  cfg.stage_dir = dir_;
  Diogenes tool(replay_workload(), cfg);
  (void)tool.analyze();
  const StageBundle bundle = load_stage_files(dir_, "replayee");

  // Re-analysis with a different misplaced threshold is a pure
  // analysis-side decision: no new collection, possibly different
  // problem classification.
  ToolConfig strict = cfg;
  strict.misplaced_threshold = Duration{0};
  const AnalysisResult strict_r = analyze_offline(bundle, strict);
  ToolConfig lax = cfg;
  lax.misplaced_threshold = secs(10.0);
  const AnalysisResult lax_r = analyze_offline(bundle, lax);
  // Strict threshold flags at least as many problems.
  EXPECT_GE(strict_r.graph.problematic_indices().size(),
            lax_r.graph.problematic_indices().size());
}

TEST_F(ReplayTest, MissingFilesThrow) {
  EXPECT_THROW(load_stage_files(dir_, "no_such_workload"), Error);
}

TEST_F(ReplayTest, CorruptFileThrows) {
  ToolConfig cfg;
  cfg.stage_dir = dir_;
  Diogenes tool(replay_workload(), cfg);
  (void)tool.analyze();
  // Truncate one stage file.
  std::ofstream(dir_ + "/replayee_stage3.json", std::ios::trunc)
      << "{ not json";
  EXPECT_THROW(load_stage_files(dir_, "replayee"), Error);
}

}  // namespace
}  // namespace diog::ffm
