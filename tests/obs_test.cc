// Tests for the self-telemetry subsystem (src/obs/): metrics registry,
// span collector, structured logger, overhead accountant, the heartbeat
// reporter, and the Telemetry facade's JSONL export. Every test also has
// defined behavior in a -DDIOG_OBS=OFF build, where recording is
// compiled out — the obs::kCompiledIn branches below assert the no-op
// contract instead.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "core/stage4_syncuse.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "obs/heartbeat.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "support/error.h"
#include "trace/callstack.h"

namespace diog::obs {
namespace {

TEST(ObsCounter, IncrementsOrNoOps) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  if (kCompiledIn) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  g.set(-7);
  g.add(10);
  if (kCompiledIn) {
    EXPECT_EQ(g.value(), 3);
  } else {
    EXPECT_EQ(g.value(), 0);
  }
}

TEST(ObsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter& a = reg.counter("stage2.ops");
  Counter& a_again = reg.counter("stage2.ops");
  EXPECT_EQ(&a, &a_again);  // resolve once, record many times

  reg.gauge("stage1.sync_sites").set(4);
  reg.histogram("stage2.sync_wait").record_ns(1000);
  if (!kCompiledIn) {
    EXPECT_EQ(reg.size(), 0u);
    return;
  }
  EXPECT_EQ(reg.size(), 3u);

  a.inc(5);
  const auto cs = reg.counters();
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].name, "stage2.ops");
  EXPECT_EQ(cs[0].value, 5u);

  reg.reset();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(ObsHistogram, ExactAggregatesAndClampedPercentiles) {
  Histogram h;
  EXPECT_EQ(h.percentile(50).count(), 0);  // empty
  for (int i = 0; i < 4; ++i) h.record(Duration{1000});
  if (!kCompiledIn) {
    EXPECT_EQ(h.count(), 0u);
    return;
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum().count(), 4000);
  EXPECT_EQ(h.min().count(), 1000);
  EXPECT_EQ(h.max().count(), 1000);
  // 1000 ns lands in bucket [512, 1024); the geometric midpoint (768)
  // is clamped into the observed [min, max] range, so a degenerate
  // distribution reports itself exactly.
  EXPECT_EQ(h.percentile(50).count(), 1000);
  EXPECT_EQ(h.percentile(99).count(), 1000);
}

TEST(ObsHistogram, PercentilesSeparateBimodalTail) {
  if (!kCompiledIn) GTEST_SKIP() << "recording compiled out";
  Histogram h;
  // 95 fast ops at ~1 us and 5 slow ones at ~1 ms: the median must
  // stay in the fast mode and p99 must reach the slow mode, both
  // within the documented ~±50% bucket resolution.
  for (int i = 0; i < 95; ++i) h.record_ns(1'000);
  for (int i = 0; i < 5; ++i) h.record_ns(1'000'000);
  const auto p50 = static_cast<double>(h.percentile(50).count());
  const auto p99 = static_cast<double>(h.percentile(99).count());
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 2'000.0);
  EXPECT_GE(p99, 500'000.0);
  EXPECT_LE(p99, 2'000'000.0);
  EXPECT_LE(h.percentile(100).count(), h.max().count());
}

TEST(ObsHistogram, NegativeSamplesClampToZero) {
  if (!kCompiledIn) GTEST_SKIP() << "recording compiled out";
  Histogram h;
  h.record_ns(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min().count(), 0);
  EXPECT_EQ(h.sum().count(), 0);
}

TEST(ObsRegistry, RenderGroupsByStage) {
  MetricsRegistry reg;
  reg.counter("stage2.ops").inc(7);
  reg.histogram("stage2.sync_wait").record_ns(4096);
  reg.counter("cli.commands").inc();
  const std::string out = reg.render();
  if (!kCompiledIn) {
    EXPECT_NE(out.find("compiled out"), std::string::npos);
    return;
  }
  EXPECT_NE(out.find("[stage2]"), std::string::npos);
  EXPECT_NE(out.find("[cli]"), std::string::npos);
  EXPECT_NE(out.find("ops"), std::string::npos);
  // Histograms render as aligned percentile columns under a header row.
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);

  const json::Value v = reg.to_json();
  EXPECT_EQ(v.at("counters").at("stage2.ops").as_int(), 7);
  EXPECT_EQ(v.at("histograms").at("stage2.sync_wait").at("count").as_int(), 1);
}

TEST(ObsRegistry, SnapshotsShareOneSerializationPath) {
  if (!kCompiledIn) GTEST_SKIP() << "recording compiled out";
  MetricsRegistry reg;
  reg.counter("x.a").inc(3);
  reg.gauge("x.g").set(-2);
  reg.histogram("x.h").record_ns(1000);

  // Snapshot to_json() is the single serialization path: the registry's
  // aggregate JSON embeds exactly the same fields.
  const auto cs = reg.counters();
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].to_json().at("type").as_string(), "counter");
  EXPECT_EQ(cs[0].to_json().at("value").as_int(), 3);

  const auto gs = reg.gauges();
  ASSERT_EQ(gs.size(), 1u);
  EXPECT_EQ(gs[0].to_json().at("type").as_string(), "gauge");
  EXPECT_EQ(gs[0].to_json().at("value").as_int(), -2);

  const auto hs = reg.histograms();
  ASSERT_EQ(hs.size(), 1u);
  const json::Value hj = hs[0].to_json();
  EXPECT_EQ(hj.at("type").as_string(), "histogram");
  EXPECT_EQ(hj.at("count").as_int(), 1);

  const json::Value v = reg.to_json();
  EXPECT_EQ(v.at("gauges").at("x.g").as_int(), -2);
  EXPECT_EQ(v.at("histograms").at("x.h").at("p50_ns").as_int(),
            hj.at("p50_ns").as_int());
  EXPECT_EQ(v.at("histograms").at("x.h").at("p99_ns").as_int(),
            hj.at("p99_ns").as_int());
}

TEST(ObsSpan, CollectorTracksDepthAndParents) {
  SpanCollector spans;
  const std::int64_t outer = spans.open("ffm.analyze");
  const std::int64_t inner = spans.open("stage5.build_graph");
  spans.close(inner);
  const std::int64_t sibling = spans.open("stage5.groupings");
  spans.close(sibling);
  spans.close(outer);

  const auto recs = spans.snapshot();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].name, "ffm.analyze");
  EXPECT_EQ(recs[0].depth, 0);
  EXPECT_EQ(recs[0].parent, -1);
  EXPECT_EQ(recs[1].depth, 1);
  EXPECT_EQ(recs[1].parent, outer);
  EXPECT_EQ(recs[2].depth, 1);
  EXPECT_EQ(recs[2].parent, outer);
  for (const SpanRecord& r : recs) {
    EXPECT_GE(r.end_ns, r.start_ns);
    EXPECT_GE(r.duration_ns(), 0);
  }
  // The parent's interval contains both children.
  EXPECT_LE(recs[0].start_ns, recs[1].start_ns);
  EXPECT_GE(recs[0].end_ns, recs[2].end_ns);
}

TEST(ObsSpan, RaiiMacroRespectsRuntimeToggle) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  { DIOG_SPAN("test.enabled_span"); }
  t.set_enabled(false);
  { DIOG_SPAN("test.disabled_span"); }
  t.set_enabled(true);

  const auto recs = t.spans().snapshot();
  if (!kCompiledIn) {
    EXPECT_TRUE(recs.empty());
  } else {
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].name, "test.enabled_span");
    EXPECT_GE(recs[0].end_ns, recs[0].start_ns);
  }
  t.reset();
}

TEST(ObsLogger, DefaultLevelKeepsInfoSilent) {
  Logger log;
  log.set_stderr_enabled(false);
  log.info("stage1", "running baseline");
  EXPECT_TRUE(log.records().empty());  // default level is warn

  log.warn("stage3", "hash collision");
  if (!kCompiledIn) {
    EXPECT_TRUE(log.records().empty());
    return;
  }
  const auto recs = log.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].level, LogLevel::kWarn);
  EXPECT_EQ(recs[0].component, "stage3");
  EXPECT_EQ(recs[0].message, "hash collision");
}

TEST(ObsLogger, LevelAndSinkAndFormatting) {
  if (!kCompiledIn) GTEST_SKIP() << "logging compiled out";
  Logger log;
  log.set_stderr_enabled(false);
  log.set_level(LogLevel::kInfo);
  std::vector<std::string> sunk;
  log.set_sink([&sunk](const LogRecord& r) { sunk.push_back(r.message); });

  log.debug("cli", "dropped");  // below level
  log.logf(LogLevel::kInfo, "stage2", "traced %d ops in %s", 12, "cumf_als");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0], "traced 12 ops in cumf_als");

  log.set_level(LogLevel::kOff);
  log.error("cli", "swallowed");
  EXPECT_EQ(log.records().size(), 1u);

  const json::Value v = log.records()[0].to_json();
  EXPECT_EQ(v.at("type").as_string(), "log");
  EXPECT_EQ(v.at("level").as_string(), "info");
  EXPECT_EQ(v.at("component").as_string(), "stage2");
}

TEST(ObsAccountant, StageMathAndTotals) {
  StageOverhead s;
  s.stage = "stage2";
  s.app_time = Duration{4000};
  s.baseline_time = Duration{1000};
  s.probes_fired = 12;
  s.probe_cost = Duration{300};
  EXPECT_DOUBLE_EQ(s.perturbation(), 4.0);
  EXPECT_EQ(s.tool_time().count(), 3000);

  StageOverhead faster;  // noise clamps, never negative tool time
  faster.app_time = Duration{900};
  faster.baseline_time = Duration{1000};
  EXPECT_EQ(faster.tool_time().count(), 0);

  OverheadAccountant acc;
  StageOverhead s1;
  s1.stage = "stage1";
  s1.app_time = Duration{1000};
  s1.baseline_time = Duration{1000};
  acc.record(s1);
  acc.record(s);
  if (!kCompiledIn) {
    EXPECT_EQ(acc.size(), 0u);
    return;
  }
  ASSERT_EQ(acc.size(), 2u);
  // Collection = every run's app time vs the shared stage-1 baseline:
  // (1000 + 4000) / 1000.
  EXPECT_DOUBLE_EQ(acc.total_collection_factor(), 5.0);

  const std::string table = acc.render();
  EXPECT_NE(table.find("stage2"), std::string::npos);
  EXPECT_NE(table.find("4.00x"), std::string::npos);
  EXPECT_NE(table.find("total collection cost: 5.0x"), std::string::npos);

  const json::Value v = s.to_json();
  EXPECT_EQ(v.at("type").as_string(), "stage_overhead");
  EXPECT_EQ(v.at("tool_ns").as_int(), 3000);
}

// A small deterministic workload exercising the instrumented stages.
ffm::Workload make_workload() {
  auto out = std::make_shared<gpusim::HostBuffer<float>>(256);
  ffm::Workload w;
  w.name = "obs_probe";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    DIOG_APP_FRAME("obs_main", "obs.cu", 3);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    gpusim::KernelDesc k;
    k.name = "obs_kernel";
    k.duration = ms(2);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             hooks::MemcpyKind::kDeviceToHost);
    volatile float v = (*out)[0];
    (void)v;
    (void)gpusim::cudaFree(dev);
  };
  return w;
}

void run_pipeline() {
  const ffm::Workload w = make_workload();
  const ffm::ToolConfig cfg;
  const ffm::Stage1Result s1 = ffm::run_stage1(w, cfg);
  (void)ffm::run_stage2(w, cfg, s1);
  (void)ffm::run_stage3(w, cfg, s1);
  (void)ffm::run_stage4(w, cfg, s1);
}

TEST(ObsTelemetry, StagesPopulateGlobalSession) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  run_pipeline();

  if (!kCompiledIn) {
    EXPECT_EQ(t.metrics().size(), 0u);
    EXPECT_EQ(t.accountant().size(), 0u);
    return;
  }
  // Each stage runner leaves its fingerprint: counters, the per-run
  // overhead row, and nested spans on the internal timeline.
  EXPECT_EQ(t.metrics().counter("stage1.runs").value(), 1u);
  EXPECT_EQ(t.metrics().counter("stage2.runs").value(), 1u);
  EXPECT_GT(t.metrics().counter("stage2.ops").value(), 0u);
  EXPECT_GT(t.metrics().histogram("stage2.sync_wait").count(), 0u);
  EXPECT_EQ(t.accountant().size(), 4u);

  const auto rows = t.accountant().snapshot();
  EXPECT_EQ(rows[0].stage, "stage1");
  EXPECT_DOUBLE_EQ(rows[0].perturbation(), 1.0);  // its own baseline
  for (const StageOverhead& row : rows) {
    EXPECT_GT(row.app_time.count(), 0);
    EXPECT_GE(row.wall_ms, 0.0);
  }

  bool stage2_span = false;
  for (const SpanRecord& s : t.spans().snapshot()) {
    if (s.name == "stage2.run") stage2_span = true;
  }
  EXPECT_TRUE(stage2_span);
  t.reset();
}

TEST(ObsTelemetry, RuntimeDisableSkipsStageRecording) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(false);
  run_pipeline();
  EXPECT_EQ(t.metrics().size(), 0u);
  EXPECT_EQ(t.accountant().size(), 0u);
  EXPECT_EQ(t.spans().size(), 0u);
  t.set_enabled(true);
  t.reset();
}

TEST(ObsTelemetry, JsonlExportRoundTrips) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  t.logger().set_stderr_enabled(false);
  run_pipeline();
  t.logger().warn("test", "one captured record");

  const std::string jsonl = t.to_jsonl();
  if (!kCompiledIn) {
    EXPECT_TRUE(jsonl.empty());
    t.logger().set_stderr_enabled(true);
    return;
  }

  // Every line must parse standalone and carry a self-describing type.
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t counters = 0, gauges = 0, histograms = 0, spans = 0,
              overheads = 0, logs = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const json::Value v = json::parse(line);
    const std::string type = v.at("type").as_string();
    if (type == "counter") ++counters;
    if (type == "gauge") ++gauges;
    if (type == "histogram") ++histograms;
    if (type == "span") ++spans;
    if (type == "stage_overhead") ++overheads;
    if (type == "log") ++logs;
  }
  EXPECT_GT(counters, 0u);
  EXPECT_GT(gauges, 0u);
  EXPECT_GT(histograms, 0u);
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(overheads, 4u);
  EXPECT_EQ(logs, 1u);

  // save_jsonl writes exactly the stream the CLI's --telemetry flag
  // promises.
  const auto path =
      std::filesystem::temp_directory_path() / "diog_obs_test.jsonl";
  t.save_jsonl(path.string());
  std::ifstream in(path, std::ios::binary);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), jsonl);
  std::filesystem::remove(path);

  t.logger().set_stderr_enabled(true);
  t.reset();
}

TEST(ObsTelemetry, SaveJsonlRejectsUnwritablePath) {
  if (!kCompiledIn) GTEST_SKIP() << "export compiled out";
  EXPECT_THROW(Telemetry::global().save_jsonl("/nonexistent-dir/x.jsonl"),
               Error);
}

// --- Heartbeat stream -------------------------------------------------------

TEST(ObsHeartbeat, CheckpointRequestsBumpSequence) {
  const std::uint64_t before = checkpoint_request_seq();
  request_checkpoint();
  EXPECT_EQ(checkpoint_request_seq(), before + 1);
}

TEST(ObsHeartbeat, CurrentStageIsSticky) {
  set_current_stage("stage_hb_test");
  EXPECT_STREQ(current_stage(), "stage_hb_test");
  set_current_stage("");
  EXPECT_STREQ(current_stage(), "");
}

TEST(ObsHeartbeat, ReporterEmitsParsableJsonl) {
  const auto path =
      std::filesystem::temp_directory_path() / "diog_hb_test.jsonl";
  std::filesystem::remove(path);
  set_current_stage("stage_hb");
  {
    HeartbeatReporter::Options opts;
    opts.path = path.string();
    opts.interval = std::chrono::milliseconds(10);
    HeartbeatReporter hb(opts, [] {
      json::Object o;
      o["payload"] = 42;
      return o;
    });
    hb.emit_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    hb.stop();
    hb.stop();  // idempotent
    EXPECT_GE(hb.emitted(), 3u);  // first + forced + interval + final
  }
  set_current_stage("");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  std::int64_t prev_seq = -1;
  bool saw_final = false;
  bool saw_stage = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const json::Value v = json::parse(line);
    EXPECT_EQ(v.at("type").as_string(), "heartbeat");
    EXPECT_EQ(v.at("payload").as_int(), 42);
    EXPECT_GT(v.at("seq").as_int(), prev_seq) << "seq must be monotonic";
    prev_seq = v.at("seq").as_int();
    if (v.at("stage").as_string() == "stage_hb") saw_stage = true;
    if (v.contains("final")) saw_final = true;
    ++lines;
  }
  EXPECT_GE(lines, 3u);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_final) << "stop() must terminate the stream validly";
  std::filesystem::remove(path);
}

TEST(ObsHeartbeat, SignalRequestForcesPromptEmit) {
  const auto path =
      std::filesystem::temp_directory_path() / "diog_hb_sig_test.jsonl";
  std::filesystem::remove(path);
  HeartbeatReporter::Options opts;
  opts.path = path.string();
  opts.interval = std::chrono::milliseconds(60'000);  // never by timer
  HeartbeatReporter hb(opts, [] { return json::Object{}; });
  const std::uint64_t at_start = hb.emitted();
  // The same atomic bump SIGUSR1 performs; the reporter must notice it
  // well before the 60 s interval.
  request_checkpoint();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hb.emitted() == at_start &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(hb.emitted(), at_start);
  hb.stop();
  std::filesystem::remove(path);
}

TEST(ObsTelemetry, ExitFlushWritesRegisteredPathOnce) {
  if (!kCompiledIn) GTEST_SKIP() << "export compiled out";
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  t.metrics().counter("exit.test").inc();
  const auto path =
      std::filesystem::temp_directory_path() / "diog_exit_flush.jsonl";
  std::filesystem::remove(path);
  Telemetry::set_exit_flush(path.string());
  Telemetry::flush_exit_files();
  EXPECT_TRUE(std::filesystem::exists(path));
  // The path is consumed: a second flush (say terminate after atexit)
  // must not rewrite the file.
  std::filesystem::remove(path);
  Telemetry::flush_exit_files();
  EXPECT_FALSE(std::filesystem::exists(path));
  t.reset();
}

TEST(ObsSchema, SchemaIdIsVersionedAndNamespaced) {
  EXPECT_EQ(schema_id("metrics"), "diogenes.metrics.v1");
  EXPECT_EQ(schema_id("heartbeat"), "diogenes.heartbeat.v1");
}

TEST(ObsSchema, EveryHeartbeatLineCarriesTheSchemaId) {
  const auto path =
      std::filesystem::temp_directory_path() / "diog_hb_schema_test.jsonl";
  std::filesystem::remove(path);
  {
    HeartbeatReporter::Options opts;
    opts.path = path.string();
    opts.interval = std::chrono::milliseconds(60'000);
    HeartbeatReporter hb(opts, [] { return json::Object{}; });
    hb.emit_now();
    hb.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const json::Value v = json::parse(line);
    EXPECT_EQ(v.at("schema").as_string(), "diogenes.heartbeat.v1");
    ++lines;
  }
  EXPECT_GE(lines, 2u);  // open + final, at minimum
  std::filesystem::remove(path);
}

TEST(ObsSchema, MetricsDocumentCarriesTheSchemaId) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  t.metrics().counter("schema.test").inc();
  const json::Value v = t.metrics_document();
  EXPECT_EQ(v.at("schema").as_string(), "diogenes.metrics.v1");
  EXPECT_TRUE(v.contains("metrics"));
  EXPECT_TRUE(v.contains("overhead"));
  // The dump must survive a parse round trip (the CLI prints exactly
  // this document for `metrics --json`).
  const json::Value rt = json::parse(v.dump());
  EXPECT_EQ(rt.at("schema").as_string(), "diogenes.metrics.v1");
  t.reset();
}

// --- Pool utilization surface (fleet heartbeat section) ---------------------

TEST(ObsParallel, PoolSummaryReflectsRegistryInstruments) {
  MetricsRegistry reg;
  const json::Value zero{parallel_pool_summary(reg)};
  EXPECT_EQ(zero.at("tasks").as_int(), 0);
  EXPECT_EQ(zero.at("pool_size").as_int(), 0);

  reg.counter("parallel.tasks").inc(120);
  reg.counter("parallel.batches").inc(3);
  reg.counter("parallel.busy_ns").inc(900);
  reg.counter("parallel.wall_ns").inc(1000);
  reg.gauge("parallel.pool.size").set(8);
  reg.gauge("parallel.utilization_pct").set(90);
  const json::Value v{parallel_pool_summary(reg)};
  if (kCompiledIn) {
    EXPECT_EQ(v.at("tasks").as_int(), 120);
    EXPECT_EQ(v.at("batches").as_int(), 3);
    EXPECT_EQ(v.at("busy_ns").as_int(), 900);
    EXPECT_EQ(v.at("wall_ns").as_int(), 1000);
    EXPECT_EQ(v.at("pool_size").as_int(), 8);
    EXPECT_EQ(v.at("utilization_pct").as_int(), 90);
  } else {
    EXPECT_EQ(v.at("tasks").as_int(), 0);
  }
}

TEST(ObsSchema, HeartbeatLinesStayV1CompatibleAndCarryThePoolSection) {
  const auto path =
      std::filesystem::temp_directory_path() / "diog_hb_pool_test.jsonl";
  std::filesystem::remove(path);
  {
    HeartbeatReporter::Options opts;
    opts.path = path.string();
    opts.interval = std::chrono::milliseconds(60'000);
    HeartbeatReporter hb(opts, [] { return json::Object{}; });
    hb.emit_now();
    hb.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const json::Value v = json::parse(line);
    // The v1 contract a fleet tailer depends on: these fields may only
    // ever gain siblings, never vanish or change type.
    EXPECT_EQ(v.at("schema").as_string(), "diogenes.heartbeat.v1");
    EXPECT_EQ(v.at("type").as_string(), "heartbeat");
    EXPECT_NO_THROW((void)v.at("t_wall_ms").as_int());
    EXPECT_NO_THROW((void)v.at("seq").as_int());
    EXPECT_NO_THROW((void)v.at("stage").as_string());
    EXPECT_NO_THROW((void)v.at("checkpoint_requests").as_int());
    // The additive pool section, in the metrics-document shape.
    const json::Value& p = v.at("parallel");
    for (const char* key : {"tasks", "batches", "busy_ns", "wall_ns",
                            "pool_size", "utilization_pct"}) {
      EXPECT_NO_THROW((void)p.at(key).as_int()) << key;
    }
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  std::filesystem::remove(path);
}

TEST(ObsSchema, MetricsDocumentCarriesThePoolSection) {
  auto& t = Telemetry::global();
  t.reset();
  t.set_enabled(true);
  const json::Value v = t.metrics_document();
  const json::Value& p = v.at("parallel");
  EXPECT_NO_THROW((void)p.at("tasks").as_int());
  EXPECT_NO_THROW((void)p.at("utilization_pct").as_int());
  t.reset();
}

// --- Prometheus exposition --------------------------------------------------

TEST(ObsPrometheus, NamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_name("stage2.sync_wait"),
            "diogenes_stage2_sync_wait");
  EXPECT_EQ(prometheus_name("parallel.pool.size"),
            "diogenes_parallel_pool_size");
  EXPECT_EQ(prometheus_name("weird name-with/chars"),
            "diogenes_weird_name_with_chars");
}

TEST(ObsPrometheus, GaugeLineCarriesTypeCommentAndSample) {
  const std::string line = prometheus_gauge_line("archive.runs", 7);
  EXPECT_NE(line.find("# TYPE diogenes_archive_runs gauge\n"),
            std::string::npos);
  EXPECT_NE(line.find("diogenes_archive_runs 7\n"), std::string::npos);
}

TEST(ObsPrometheus, TextRendersEveryInstrumentFamily) {
  MetricsRegistry reg;
  EXPECT_EQ(prometheus_text(reg), "") << "empty registry, empty exposition";
  if (!kCompiledIn) GTEST_SKIP() << "recording compiled out";

  reg.counter("explore.requests").inc(5);
  reg.gauge("parallel.pool.size").set(4);
  Histogram& h = reg.histogram("explore.request_us");
  for (int i = 1; i <= 100; ++i) h.record(Duration{i * 1000});

  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE diogenes_explore_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("diogenes_explore_requests 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE diogenes_parallel_pool_size gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE diogenes_explore_request_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("diogenes_explore_request_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("diogenes_explore_request_us_sum"), std::string::npos);
  EXPECT_NE(text.find("diogenes_explore_request_us_count 100\n"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  // Two scrapes of unchanged state must be byte-identical.
  EXPECT_EQ(prometheus_text(reg), text);
}

}  // namespace
}  // namespace diog::obs
