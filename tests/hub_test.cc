// The trace hub (ISSUE 9): protocol units, session streaming semantics,
// the torn-stream matrix, and the socket end-to-end path.
//
// The property under test throughout is the wire-format-is-the-file-
// format invariant: a completed stream IS a valid run file, a torn
// connection leaves exactly the readable prefix a SIGKILL'd local
// writer leaves, and an archived upload is byte-identical to a local
// save of the same store. The session half runs without sockets (the
// daemon's exact code path, driven directly); the loopback tests cover
// the accept/read/respond plumbing and concurrent ingestion.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.h"
#include "core/flight_recorder.h"
#include "core/tool_config.h"
#include "eventstore/event_store.h"
#include "eventstore/live_writer.h"
#include "eventstore/run_format.h"
#include "eventstore/run_io.h"
#include "eventstore/sink.h"
#include "hub/client.h"
#include "hub/protocol.h"
#include "hub/server.h"
#include "hub/session.h"
#include "obs/telemetry.h"
#include "support/error.h"
#include "testkit/dgtrace_builder.h"
#include "testkit/synth_run.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIOG_HUB_TEST_SOCKETS 1
#else
#define DIOG_HUB_TEST_SOCKETS 0
#endif

namespace diog::hub {
namespace {

namespace fs = std::filesystem;
namespace fmt = evstore::format;

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

std::uint64_t hub_counter(const char* name) {
  return obs::Telemetry::global().metrics().counter(name).value();
}

class HubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_hub_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A deterministic run with a pinned save: the byte-identity baseline.
  evstore::TraceRun make_run(std::uint64_t events,
                             const std::string& workload) {
    testkit::SynthRunOptions so;
    so.events = events;
    evstore::TraceRun run = testkit::make_synthetic_run(so);
    run.meta.workload = workload;
    return run;
  }

  std::vector<unsigned char> pinned_save_bytes(const evstore::TraceRun& run,
                                               const std::string& name) {
    const std::string path = dir_ + "/" + name;
    evstore::SaveOptions so;
    so.footer_wall_ms = 0;
    evstore::save_run(path, run, so);
    return read_bytes(path);
  }

  // Streams hello + `bytes` into a fresh session in fixed-size slices.
  // Returns the session for inspection; throws whatever feed() throws.
  std::unique_ptr<Session> stream_session(
      const std::vector<unsigned char>& bytes, const std::string& spool,
      std::size_t step = 799, std::size_t max_pending = 64ull << 20) {
    SessionOptions sopts;
    sopts.spool_path = spool;
    sopts.max_pending_bytes = max_pending;
    sopts.fsync_spool = false;
    auto session = std::make_unique<Session>(std::move(sopts));
    const std::string hello = encode_hello("hubtest");
    session->feed(reinterpret_cast<const unsigned char*>(hello.data()),
                  hello.size());
    for (std::size_t off = 0; off < bytes.size(); off += step) {
      session->feed(bytes.data() + off,
                    std::min(step, bytes.size() - off));
    }
    return session;
  }

  std::string dir_;
};

// --- Protocol units ----------------------------------------------------------

TEST_F(HubTest, HelloRoundTrips) {
  const std::string hello = encode_hello("cumf_als");
  std::size_t consumed = 0;
  std::string workload;
  // Incremental: every strict prefix wants more bytes.
  for (std::size_t n = 0; n < hello.size(); ++n) {
    EXPECT_FALSE(parse_hello(
        reinterpret_cast<const unsigned char*>(hello.data()), n, &consumed,
        &workload));
  }
  ASSERT_TRUE(parse_hello(reinterpret_cast<const unsigned char*>(hello.data()),
                          hello.size(), &consumed, &workload));
  EXPECT_EQ(consumed, hello.size());
  EXPECT_EQ(workload, "cumf_als");
}

TEST_F(HubTest, HelloRejectsHostileFrames) {
  // Wrong magic.
  std::string bad = encode_hello("x");
  bad[0] = 'Z';
  std::size_t consumed = 0;
  std::string workload;
  EXPECT_THROW(parse_hello(reinterpret_cast<const unsigned char*>(bad.data()),
                           bad.size(), &consumed, &workload),
               Error);
  // Absurd announced length must be rejected from the fixed prefix
  // alone, before any buffering happens.
  unsigned char huge[8];
  std::memcpy(huge, &kHelloMagic, 4);
  const std::uint32_t len = 1u << 30;
  std::memcpy(huge + 4, &len, 4);
  EXPECT_THROW(parse_hello(huge, sizeof huge, &consumed, &workload), Error);
  // Wrong schema id.
  const std::string wrong_schema =
      "{\"schema\":\"diogenes.hub.v0\",\"workload\":\"x\"}";
  std::string frame;
  frame.append(reinterpret_cast<const char*>(&kHelloMagic), 4);
  const std::uint32_t wlen = static_cast<std::uint32_t>(wrong_schema.size());
  frame.append(reinterpret_cast<const char*>(&wlen), 4);
  frame += wrong_schema;
  EXPECT_THROW(
      parse_hello(reinterpret_cast<const unsigned char*>(frame.data()),
                  frame.size(), &consumed, &workload),
      Error);
}

TEST_F(HubTest, WorkloadNamesAreFilenameSafe) {
  EXPECT_TRUE(workload_name_ok("cumf_als"));
  EXPECT_TRUE(workload_name_ok("run-2.1"));
  EXPECT_FALSE(workload_name_ok(""));
  EXPECT_FALSE(workload_name_ok("."));
  EXPECT_FALSE(workload_name_ok(".."));
  EXPECT_FALSE(workload_name_ok("a/b"));
  EXPECT_FALSE(workload_name_ok("a b"));
  EXPECT_FALSE(workload_name_ok(std::string(kMaxWorkloadChars + 1, 'a')));
  EXPECT_THROW(encode_hello("a/b"), Error);
}

TEST_F(HubTest, PeekFrameClassifiesChunkAndFooter) {
  const testkit::Bytes chunk = testkit::make_chunk(testkit::ChunkParams{});
  std::size_t frame_len = 0;
  // Every strict prefix: need more.
  for (std::size_t n = 0; n < chunk.size(); ++n) {
    EXPECT_EQ(peek_frame(chunk.data(), n, 1u << 20, &frame_len),
              FrameKind::kNeedMore);
  }
  EXPECT_EQ(peek_frame(chunk.data(), chunk.size(), 1u << 20, &frame_len),
            FrameKind::kChunk);
  EXPECT_EQ(frame_len, chunk.size());

  const testkit::Bytes footer = testkit::make_footer(true, 0, 1);
  ASSERT_EQ(footer.size(), fmt::kFooterBytes);
  EXPECT_EQ(peek_frame(footer.data(), footer.size() - 1, 1u << 20, &frame_len),
            FrameKind::kNeedMore);
  EXPECT_EQ(peek_frame(footer.data(), footer.size(), 1u << 20, &frame_len),
            FrameKind::kFooter);
  EXPECT_EQ(frame_len, static_cast<std::size_t>(fmt::kFooterBytes));
}

TEST_F(HubTest, PeekFrameRejectsUnknownMagicAndOversizedFrames) {
  const unsigned char junk[12] = {'J', 'U', 'N', 'K', 0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t frame_len = 0;
  EXPECT_THROW(peek_frame(junk, sizeof junk, 1u << 20, &frame_len), Error);

  // The backpressure rule: an announced frame beyond the receive budget
  // is refused from its 12-byte prefix, before any payload is buffered.
  const testkit::Bytes chunk = testkit::make_chunk(testkit::ChunkParams{});
  try {
    peek_frame(chunk.data(), chunk.size(), /*budget=*/32, &frame_len);
    FAIL() << "oversized frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("receive budget"), std::string::npos)
        << e.what();
  }
}

TEST_F(HubTest, ResponseRoundTrips) {
  HubResponse ok;
  ok.ok = true;
  ok.run_id = "abc123";
  ok.deduplicated = true;
  ok.events = 42;
  ok.chunks = 3;
  ok.dropped = 7;
  ok.drift_findings = 1;
  const std::string line = encode_response(ok);
  EXPECT_EQ(line.back(), '\n');
  const HubResponse back = parse_response(line.substr(0, line.size() - 1));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.run_id, "abc123");
  EXPECT_TRUE(back.deduplicated);
  EXPECT_EQ(back.events, 42u);
  EXPECT_EQ(back.chunks, 3u);
  EXPECT_EQ(back.dropped, 7u);
  EXPECT_EQ(back.drift_findings, 1u);

  HubResponse err;
  err.ok = false;
  err.error = "hub session: stream torn before a footer";
  const std::string eline = encode_response(err);
  const HubResponse eback = parse_response(eline.substr(0, eline.size() - 1));
  EXPECT_FALSE(eback.ok);
  EXPECT_EQ(eback.error, err.error);

  EXPECT_THROW(parse_response("not json"), Error);
  EXPECT_THROW(parse_response("{\"schema\":\"other\"}"), Error);
}

// --- Session streaming -------------------------------------------------------

TEST_F(HubTest, SessionSpoolsACleanStreamByteForByte) {
  const evstore::TraceRun run = make_run(3000, "clean_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  const std::string spool = dir_ + "/spool.dgtrace";
  auto session = stream_session(bytes, spool);
  session->end_of_stream();

  EXPECT_TRUE(session->finalized());
  EXPECT_FALSE(session->failed());
  EXPECT_EQ(session->workload(), "hubtest");
  EXPECT_EQ(session->stats().events, 3000u);
  EXPECT_EQ(session->stats().spool_bytes, bytes.size());
  // The spool is the stream is the file: byte-identical to the save.
  EXPECT_EQ(read_bytes(spool), bytes);

  evstore::RunFileInfo info;
  const evstore::TraceRun round =
      evstore::open_run(spool, evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_EQ(round.store->size(), 3000u);
}

TEST_F(HubTest, SessionByteAtATimeStillLandsIdentical) {
  const evstore::TraceRun run = make_run(200, "slow_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  const std::string spool = dir_ + "/spool.dgtrace";
  auto session = stream_session(bytes, spool, /*step=*/1);
  session->end_of_stream();
  EXPECT_TRUE(session->finalized());
  EXPECT_EQ(read_bytes(spool), bytes);
}

// The torn-stream matrix: kill the client mid-chunk, between chunks, and
// mid-footer. In every case the spool must classify exactly as open_run
// classifies a local file truncated at the same point — the crash
// contract, transplanted onto the wire.
TEST_F(HubTest, TornStreamMatrixMatchesLocalTruncation) {
  const evstore::TraceRun run = make_run(3000, "torn_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  const testkit::FileShape shape =
      testkit::scan_shape(testkit::Bytes(bytes.begin(), bytes.end()));
  ASSERT_TRUE(shape.has_footer);
  ASSERT_GE(shape.chunks.size(), 1u);

  struct Cut {
    const char* name;
    std::size_t at;
  };
  const std::size_t chunk0_end =
      shape.chunks[0].offset + fmt::kChunkEnvelopeBytes +
      static_cast<std::size_t>(shape.chunks[0].payload_len);
  const std::vector<Cut> cuts = {
      {"mid_first_chunk", shape.chunks[0].offset + 25},
      {"between_chunks", chunk0_end},
      {"mid_footer", shape.footer_offset + fmt::kFooterBytes / 2},
  };
  for (const Cut& cut : cuts) {
    SCOPED_TRACE(cut.name);
    const std::vector<unsigned char> torn(bytes.begin(),
                                          bytes.begin() + cut.at);
    // Local ground truth: the same truncation as a file.
    const std::string local = dir_ + "/" + cut.name + ".dgtrace";
    {
      std::ofstream out(local, std::ios::binary);
      out.write(reinterpret_cast<const char*>(torn.data()),
                static_cast<std::streamsize>(torn.size()));
    }
    evstore::RunFileInfo file_info;
    (void)evstore::open_run(local, evstore::ReadMode::kAuto, &file_info);

    const std::string spool = dir_ + "/" + cut.name + ".spool.dgtrace";
    auto session = stream_session(torn, spool);
    EXPECT_THROW(session->end_of_stream(), Error);
    EXPECT_TRUE(session->failed());
    EXPECT_FALSE(session->finalized());

    evstore::RunFileInfo spool_info;
    (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &spool_info);
    EXPECT_EQ(spool_info.clean, file_info.clean);
    EXPECT_EQ(spool_info.finalized, file_info.finalized);
    EXPECT_EQ(spool_info.events, file_info.events);
    EXPECT_EQ(spool_info.chunks, file_info.chunks);
    EXPECT_EQ(spool_info.dropped_before_checkpoint,
              file_info.dropped_before_checkpoint);
  }
}

// The committed regression inputs (tests/data/dgtrace/regression): the
// hub_torn_* matrix must load as prefixes when streamed, and the
// malformed suite must be rejected with a classified error — with the
// spool always left openable.
TEST_F(HubTest, RegressionInputsClassifyAndNeverCorruptTheSpool) {
  const fs::path reg = fs::path(DIOG_TEST_DATA_DIR) / "dgtrace" / "regression";
  ASSERT_TRUE(fs::is_directory(reg));
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(reg)) {
    if (entry.path().extension() != ".dgtrace") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++seen;
    const std::vector<unsigned char> bytes = read_bytes(entry.path().string());
    const std::string spool =
        dir_ + "/" + entry.path().filename().string() + ".spool";
    bool rejected = false;
    std::unique_ptr<Session> session;
    try {
      session = stream_session(bytes, spool, /*step=*/61);
      session->end_of_stream();
    } catch (const Error&) {
      rejected = true;
    }
    if (!rejected) {
      EXPECT_TRUE(session->finalized());
    }
    if (fs::exists(spool)) {
      // Validate-then-spool: whatever the wire did, the spool opens.
      evstore::RunFileInfo info;
      EXPECT_NO_THROW(
          (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info));
    }
  }
  EXPECT_GE(seen, 9u);
}

TEST_F(HubTest, SessionRejectsBytesAfterTheFinalFooter) {
  const evstore::TraceRun run = make_run(100, "tail_wl");
  std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  const std::size_t clean_size = bytes.size();
  const unsigned char junk[] = {1, 2, 3, 4};
  bytes.insert(bytes.end(), junk, junk + sizeof junk);
  const std::string spool = dir_ + "/spool.dgtrace";
  try {
    auto session = stream_session(bytes, spool);
    FAIL() << "bytes after the footer accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("after the final footer"),
              std::string::npos)
        << e.what();
  }
  // The validated prefix — the complete clean run — is still intact.
  EXPECT_EQ(read_bytes(spool).size(), clean_size);
  evstore::RunFileInfo info;
  (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
}

TEST_F(HubTest, SessionEnforcesTheReceiveBudget) {
  const evstore::TraceRun run = make_run(3000, "big_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  const std::string spool = dir_ + "/spool.dgtrace";
  try {
    // A 4 KiB budget is below any 3000-event chunk; the announced
    // length must be refused before the payload is buffered.
    auto session = stream_session(bytes, spool, 799, /*max_pending=*/4096);
    FAIL() << "oversized frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("receive budget"), std::string::npos)
        << e.what();
  }
}

TEST_F(HubTest, SessionRejectsGarbageFrameMagic) {
  std::vector<unsigned char> bytes;
  const testkit::Bytes header = testkit::make_header();
  bytes.insert(bytes.end(), header.begin(), header.end());
  const char junk[] = "JUNKJUNKJUNK";
  bytes.insert(bytes.end(), junk, junk + 12);
  const std::string spool = dir_ + "/spool.dgtrace";
  try {
    auto session = stream_session(bytes, spool);
    FAIL() << "garbage magic accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("frame magic"), std::string::npos)
        << e.what();
  }
  // The header was validated and spooled before the garbage arrived.
  evstore::RunFileInfo info;
  (void)evstore::open_run(spool, evstore::ReadMode::kAuto, &info);
  EXPECT_EQ(info.events, 0u);
  EXPECT_FALSE(info.finalized);
}

TEST_F(HubTest, SessionRefusesStreamsEndingBeforeTheHeader) {
  {
    SessionOptions sopts;
    sopts.spool_path = dir_ + "/s1.dgtrace";
    Session session(std::move(sopts));
    EXPECT_THROW(session.end_of_stream(), Error);  // before the hello
  }
  {
    SessionOptions sopts;
    sopts.spool_path = dir_ + "/s2.dgtrace";
    Session session(std::move(sopts));
    const std::string hello = encode_hello("w");
    session.feed(reinterpret_cast<const unsigned char*>(hello.data()),
                 hello.size());
    EXPECT_THROW(session.end_of_stream(), Error);  // before the header
  }
}

// --- Server ingest (socket-free) ---------------------------------------------

TEST_F(HubTest, ServerIngestsAndDedupsSessions) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));

  const evstore::TraceRun run = make_run(2000, "ingest_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");

  auto s1 = stream_session(bytes, server.next_spool_path());
  s1->end_of_stream();
  const IngestOutcome o1 = server.ingest(*s1);
  EXPECT_FALSE(o1.deduplicated);
  ASSERT_FALSE(o1.run_id.empty());

  // The archived object is byte-identical to the local save, and the
  // spool was removed after the copy became durable.
  const std::string object =
      dir_ + "/archive/objects/" + o1.run_id + ".dgtrace";
  EXPECT_EQ(read_bytes(object), bytes);
  EXPECT_FALSE(fs::exists(s1->spool_path()));

  auto s2 = stream_session(bytes, server.next_spool_path());
  s2->end_of_stream();
  EXPECT_NE(s1->spool_path(), s2->spool_path());
  const IngestOutcome o2 = server.ingest(*s2);
  EXPECT_TRUE(o2.deduplicated);
  EXPECT_EQ(o2.run_id, o1.run_id);

  archive::ArchiveOptions aopts;
  aopts.root = dir_ + "/archive";
  const archive::Archive ar(std::move(aopts));
  EXPECT_EQ(ar.index().size(), 1u);
}

TEST_F(HubTest, ServerRefusesToIngestAnUnfinalizedSession) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  HubServer server(std::move(sopts));
  const evstore::TraceRun run = make_run(500, "torn_ingest");
  std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");
  bytes.resize(bytes.size() - fmt::kFooterBytes);  // drop the footer
  auto session = stream_session(bytes, server.next_spool_path());
  EXPECT_THROW(session->end_of_stream(), Error);
  EXPECT_THROW(server.ingest(*session), Error);
  // The torn spool survives for post-mortem reads.
  EXPECT_TRUE(fs::exists(session->spool_path()));
}

#if DIOG_HUB_TEST_SOCKETS

// --- Loopback end-to-end -----------------------------------------------------

class ServeGuard {
 public:
  explicit ServeGuard(HubServer& server) : server_(server) {
    server_.bind();
    thread_ = std::thread([this] { server_.serve(); });
  }
  ~ServeGuard() {
    server_.stop();
    thread_.join();
  }

 private:
  HubServer& server_;
  std::thread thread_;
};

TEST_F(HubTest, PushOverLoopbackArchivesByteIdentical) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  const evstore::TraceRun run = make_run(2000, "push_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");

  ClientOptions copts;
  copts.port = server.port();
  copts.workload = "push_wl";
  const HubResponse r1 = push_bytes(bytes.data(), bytes.size(), copts);
  EXPECT_TRUE(r1.ok);
  EXPECT_FALSE(r1.deduplicated);
  EXPECT_EQ(r1.events, 2000u);
  ASSERT_FALSE(r1.run_id.empty());
  EXPECT_EQ(read_bytes(dir_ + "/archive/objects/" + r1.run_id + ".dgtrace"),
            bytes);

  // Re-push: content-addressed dedup, nothing appended.
  const HubResponse r2 = push_bytes(bytes.data(), bytes.size(), copts);
  EXPECT_TRUE(r2.deduplicated);
  EXPECT_EQ(r2.run_id, r1.run_id);
  archive::ArchiveOptions aopts;
  aopts.root = dir_ + "/archive";
  const archive::Archive ar(std::move(aopts));
  EXPECT_EQ(ar.index().size(), 1u);
}

TEST_F(HubTest, PushRunFileDefaultsWorkloadFromTheFilename) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  const evstore::TraceRun run = make_run(400, "file_wl");
  (void)pinned_save_bytes(run, "file_wl.dgtrace");
  ClientOptions copts;
  copts.port = server.port();
  const HubResponse r =
      push_run_file(dir_ + "/file_wl.dgtrace", copts);
  EXPECT_TRUE(r.ok);
  archive::ArchiveOptions aopts;
  aopts.root = dir_ + "/archive";
  const archive::Archive ar(std::move(aopts));
  ASSERT_EQ(ar.index().size(), 1u);
  EXPECT_EQ(ar.index()[0].workload, "file_wl");
}

TEST_F(HubTest, HostileStreamGetsAClassifiedRejection) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  std::vector<unsigned char> bytes;
  const testkit::Bytes header = testkit::make_header();
  bytes.insert(bytes.end(), header.begin(), header.end());
  const char junk[] = "JUNKJUNKJUNKJUNK";
  bytes.insert(bytes.end(), junk, junk + 16);

  ClientOptions copts;
  copts.port = server.port();
  copts.workload = "hostile";
  try {
    (void)push_bytes(bytes.data(), bytes.size(), copts);
    FAIL() << "hostile stream accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("hub rejected the run"),
              std::string::npos)
        << e.what();
  }
  // The daemon survives and keeps serving.
  const evstore::TraceRun run = make_run(100, "after_hostile");
  const std::vector<unsigned char> good = pinned_save_bytes(run, "g.dgtrace");
  copts.workload = "after_hostile";
  EXPECT_TRUE(push_bytes(good.data(), good.size(), copts).ok);
}

TEST_F(HubTest, HubSinkFinishOnlyStreamIsByteIdenticalToSaveRun) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  const evstore::TraceRun run = make_run(2000, "sink_wl");
  const std::vector<unsigned char> bytes = pinned_save_bytes(run, "local.dgtrace");

  ClientOptions copts;
  copts.port = server.port();
  copts.workload = "sink_wl";
  HubSink::Options hopts;
  hopts.footer_wall_ms = 0;
  HubSink sink(copts, hopts);
  sink.finish(run);
  ASSERT_TRUE(sink.finished());
  const HubResponse& r = sink.response();
  EXPECT_TRUE(r.ok);
  ASSERT_FALSE(r.run_id.empty());
  // finish() with no prior checkpoints uses the save_run layout, so the
  // streamed bytes — and thus the archived object — are byte-identical
  // to the local pinned save.
  EXPECT_EQ(read_bytes(dir_ + "/archive/objects/" + r.run_id + ".dgtrace"),
            bytes);
}

TEST_F(HubTest, CheckpointedHubSinkMatchesTheLiveWriterChunkForChunk) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  // Build a run incrementally, checkpointing file and wire in lockstep —
  // the flight recorder's exact call pattern, with the wall pinned.
  evstore::TraceRun run;
  run.meta.workload = "lockstep_wl";
  const auto append_events = [&run](std::uint64_t from, std::uint64_t n) {
    for (std::uint64_t i = from; i < from + n; ++i) {
      evstore::Event e;
      e.kind = static_cast<evstore::EventKind>(i % evstore::kEventKindCount);
      e.op_index = i;
      e.t_start = static_cast<std::int64_t>(i * 2);
      e.t_end = e.t_start + 1;
      run.store->append(e);
    }
  };

  const std::string local = dir_ + "/lockstep.dgtrace";
  evstore::LiveRunWriter::Options wopts;
  wopts.footer_wall_ms = 0;
  evstore::LiveRunWriter writer(local, wopts);
  ClientOptions copts;
  copts.port = server.port();
  copts.workload = "lockstep_wl";
  HubSink::Options hsopts;
  hsopts.footer_wall_ms = 0;
  HubSink sink(copts, hsopts);

  writer.checkpoint(run, /*force=*/true);
  sink.checkpoint(run, /*force=*/true);
  append_events(0, 700);
  writer.checkpoint(run, /*force=*/true);
  sink.checkpoint(run, /*force=*/true);
  append_events(700, 1300);
  writer.finish(run);
  sink.finish(run);

  ASSERT_TRUE(sink.response().ok);
  EXPECT_EQ(sink.response().events, 2000u);
  EXPECT_GE(sink.chunks_sent(), 3u);
  // The streamed bytes equal the live file's bytes: same chunks, same
  // dictionaries, same (pinned) footer.
  EXPECT_EQ(
      read_bytes(dir_ + "/archive/objects/" + sink.response().run_id +
                 ".dgtrace"),
      read_bytes(local));
}

TEST_F(HubTest, TornSinkLeavesACheckpointedPrefixOnTheServer) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  const std::uint64_t torn_before = hub_counter("hub.torn");
  evstore::TraceRun run = make_run(1500, "torn_sink_wl");
  {
    ClientOptions copts;
    copts.port = server.port();
    copts.workload = "torn_sink_wl";
    HubSink sink(copts);
    sink.checkpoint(run, /*force=*/true);
    // Destroyed without finish(): the crash contract on the wire.
  }
  // The server notices the torn stream when the connection drops.
  for (int i = 0; i < 500 && hub_counter("hub.torn") == torn_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(hub_counter("hub.torn"), torn_before);

  // The spool survives as a readable checkpointed prefix: all 1500
  // events from the forced checkpoint, no footer.
  std::vector<std::string> spools;
  for (const auto& entry :
       fs::directory_iterator(dir_ + "/archive/spool")) {
    spools.push_back(entry.path().string());
  }
  ASSERT_EQ(spools.size(), 1u);
  evstore::RunFileInfo info;
  const evstore::TraceRun prefix =
      evstore::open_run(spools[0], evstore::ReadMode::kAuto, &info);
  EXPECT_FALSE(info.finalized);
  EXPECT_EQ(prefix.store->size(), 1500u);
}

TEST_F(HubTest, FlightRecorderStreamsThroughTheRegisteredSinkFactory) {
  register_tcp_sink();
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  evstore::TraceRun run = make_run(1200, "fr_wl");
  ffm::ToolConfig cfg;
  cfg.trace_dir = dir_ + "/traces";
  cfg.sink = "tcp://127.0.0.1:" + std::to_string(server.port());
  {
    ffm::FlightRecorder rec(run, cfg, "fr_wl");
    ASSERT_NE(rec.sink(), nullptr);
    rec.finish();
  }
  archive::ArchiveOptions aopts;
  aopts.root = dir_ + "/archive";
  const archive::Archive ar(std::move(aopts));
  ASSERT_EQ(ar.index().size(), 1u);
  EXPECT_EQ(ar.index()[0].workload, "fr_wl");
  EXPECT_EQ(ar.index()[0].events, 1200u);
  // The streamed object opens clean and holds the full store.
  const evstore::TraceRun round = evstore::open_run(
      dir_ + "/archive/objects/" + ar.index()[0].run_id + ".dgtrace");
  EXPECT_EQ(round.store->size(), 1200u);
}

TEST_F(HubTest, BadSinkUrlFailsTheRecorderBeforeCollection) {
  register_tcp_sink();
  evstore::TraceRun run;
  ffm::ToolConfig cfg;
  cfg.sink = "udp://nope";
  EXPECT_THROW(ffm::FlightRecorder(run, cfg, "w"), Error);
}

// --- Concurrency soak --------------------------------------------------------

TEST_F(HubTest, ConcurrentWritersAllLandByteIdenticalAndCountersReconcile) {
  ServerOptions sopts;
  sopts.archive_root = dir_ + "/archive";
  sopts.ingest_wall_ms = 0;
  sopts.max_clients = 16;
  HubServer server(std::move(sopts));
  ServeGuard guard(server);

  constexpr int kWriters = 8;
  const std::uint64_t ingested_before = hub_counter("hub.ingested");
  const std::uint64_t dedup_before = hub_counter("hub.dedup");
  const std::uint64_t events_before = hub_counter("hub.events");

  // Distinct deterministic workloads, pinned saves as ground truth.
  std::vector<std::vector<unsigned char>> payloads(kWriters);
  std::uint64_t expected_events = 0;
  for (int w = 0; w < kWriters; ++w) {
    const std::uint64_t events = 500 + 250 * static_cast<std::uint64_t>(w);
    evstore::TraceRun run = make_run(events, "soak_" + std::to_string(w));
    payloads[w] = pinned_save_bytes(run, "soak_" + std::to_string(w) +
                                             ".dgtrace");
    expected_events += events;
  }

  // Wave 1: all archived. Wave 2: all deduplicated. Both concurrent.
  for (const bool expect_dedup : {false, true}) {
    std::vector<HubResponse> responses(kWriters);
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        ClientOptions copts;
        copts.port = server.port();
        copts.workload = "soak_" + std::to_string(w);
        responses[w] =
            push_bytes(payloads[w].data(), payloads[w].size(), copts);
      });
    }
    for (auto& t : writers) t.join();
    for (int w = 0; w < kWriters; ++w) {
      SCOPED_TRACE(w);
      EXPECT_TRUE(responses[w].ok);
      EXPECT_EQ(responses[w].deduplicated, expect_dedup);
      EXPECT_EQ(responses[w].events, 500u + 250u * static_cast<unsigned>(w));
      // Byte-identity holds under concurrency: every archived object
      // equals its local pinned save.
      EXPECT_EQ(read_bytes(dir_ + "/archive/objects/" + responses[w].run_id +
                           ".dgtrace"),
                payloads[w]);
    }
  }

  archive::ArchiveOptions aopts;
  aopts.root = dir_ + "/archive";
  const archive::Archive ar(std::move(aopts));
  EXPECT_EQ(ar.index().size(), static_cast<std::size_t>(kWriters));

  // Per-session accounting reconciles exactly: both waves validated
  // every chunk, so the counters advance by exactly two sweeps.
  EXPECT_EQ(hub_counter("hub.ingested") - ingested_before,
            2u * kWriters);
  EXPECT_EQ(hub_counter("hub.dedup") - dedup_before,
            static_cast<std::uint64_t>(kWriters));
  EXPECT_EQ(hub_counter("hub.events") - events_before, 2 * expected_events);
  // No session left behind: the gauge drains to its pre-test level and
  // every spool was consumed by ingestion.
  std::size_t spools = 0;
  for (const auto& entry :
       fs::directory_iterator(dir_ + "/archive/spool")) {
    (void)entry;
    ++spools;
  }
  EXPECT_EQ(spools, 0u);
}

#endif  // DIOG_HUB_TEST_SOCKETS

}  // namespace
}  // namespace diog::hub
