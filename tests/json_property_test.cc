// Property tests for the JSON layer: random document round trips, and
// robustness of the parser against mutated/garbage input (it must throw
// diog::Error, never crash or accept trailing garbage).
#include <gtest/gtest.h>

#include <string>

#include "json/json.h"
#include "support/error.h"
#include "support/rng.h"

namespace diog::json {
namespace {

Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.next_below(depth <= 0 ? 5 : 7));
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.next_bool());
    case 2: return Value(rng.next_in(-1'000'000'000, 1'000'000'000));
    case 3: {
      // Doubles that survive %.17g round trips.
      return Value(static_cast<double>(rng.next_in(-1000000, 1000000)) /
                   64.0);
    }
    case 4: {
      std::string s;
      const std::size_t len = rng.next_below(20);
      for (std::size_t i = 0; i < len; ++i) {
        // Mix printable ASCII with characters needing escapes.
        static constexpr char kChars[] =
            "abcXYZ 0123\"\\\n\t/{}[]:,\x01\x1f";
        s += kChars[rng.next_below(sizeof(kChars) - 1)];
      }
      return Value(std::move(s));
    }
    case 5: {
      Array a;
      const std::size_t n = rng.next_below(6);
      for (std::size_t i = 0; i < n; ++i) {
        a.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(a));
    }
    default: {
      Object o;
      const std::size_t n = rng.next_below(6);
      for (std::size_t i = 0; i < n; ++i) {
        o["k" + std::to_string(rng.next_below(50))] =
            random_value(rng, depth - 1);
      }
      return Value(std::move(o));
    }
  }
}

class JsonPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonPropertyTest, RandomDocumentsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const Value v = random_value(rng, 4);
    EXPECT_EQ(parse(v.dump()), v);
    EXPECT_EQ(parse(v.dump_pretty()), v);
    // Dump of a parse is a fixed point.
    EXPECT_EQ(parse(v.dump()).dump(), v.dump());
  }
}

TEST_P(JsonPropertyTest, MutatedDocumentsNeverCrash) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 120; ++i) {
    std::string text = random_value(rng, 3).dump();
    // Apply 1-3 random mutations: deletions, flips, insertions.
    const int mutations = 1 + static_cast<int>(rng.next_below(3));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = rng.next_below(text.size());
      switch (rng.next_below(3)) {
        case 0: text.erase(pos, 1); break;
        case 1:
          text[pos] = static_cast<char>(rng.next_below(128));
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.next_below(128)));
          break;
      }
    }
    // Either parses to something or throws Error — no crashes, no
    // other exception types.
    try {
      (void)parse(text);
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

TEST_P(JsonPropertyTest, GarbageNeverAccepted) {
  Rng rng(GetParam() + 99);
  for (int i = 0; i < 60; ++i) {
    std::string garbage;
    const std::size_t len = 1 + rng.next_below(40);
    for (std::size_t j = 0; j < len; ++j) {
      // Exclude characters that could begin a valid scalar document.
      static constexpr char kNoise[] = "xyzq@#$%^&*()<>;=_|~`";
      garbage += kNoise[rng.next_below(sizeof(kNoise) - 1)];
    }
    EXPECT_THROW((void)parse(garbage), Error) << garbage;
  }
}

TEST(JsonEscaping, EveryControlCharacterRoundTrips) {
  // All of 0x00-0x1F must serialize as an escape (the short forms for
  // \b \f \n \r \t, \u00XX otherwise), parse back to the same byte,
  // and reach a dump fixed point.
  for (int c = 0; c < 0x20; ++c) {
    std::string s = "pre";
    s += static_cast<char>(c);
    s += "post";
    const Value v{s};
    const std::string dumped = v.dump();
    for (const char raw : dumped) {
      EXPECT_GE(static_cast<unsigned char>(raw), 0x20u)
          << "raw control byte " << c << " leaked into the serialization";
    }
    EXPECT_EQ(parse(dumped), v) << "control byte " << c;
    EXPECT_EQ(parse(dumped).dump(), dumped) << "control byte " << c;
  }
}

TEST(JsonEscaping, EmbeddedNulAndHighBytesSurvive) {
  // NUL in the middle of a std::string is data, not a terminator; bytes
  // >= 0x80 (UTF-8 continuation range) pass through verbatim.
  std::string s("a\0b", 3);
  s += "\x01\x1f";
  s += "\xc3\xa9";  // 'é'
  const Value v{s};
  EXPECT_EQ(v.dump(), "\"a\\u0000b\\u0001\\u001f\xc3\xa9\"");
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(parse(v.dump()).as_string().size(), s.size());
}

TEST(JsonEscaping, ControlCharactersInObjectKeys) {
  Object o;
  std::string key = "k\n\x02";
  o[key] = Value(std::int64_t{7});
  const Value v{std::move(o)};
  const Value back = parse(v.dump());
  EXPECT_EQ(back.at(key).as_int(), 7);
  EXPECT_EQ(back, v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace diog::json
