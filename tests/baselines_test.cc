#include <gtest/gtest.h>

#include "baselines/profilers.h"
#include "gpusim/api.h"
#include "gpusim/private_api.h"

namespace diog::baselines {
namespace {

using gpusim::KernelDesc;

ffm::Workload sync_heavy_workload(int iterations = 20) {
  ffm::Workload w;
  w.name = "sync_heavy";
  w.device = gpusim::DeviceConfig{};
  w.body = [iterations] {
    for (int i = 0; i < iterations; ++i) {
      KernelDesc k;
      k.name = "k";
      k.duration = ms(2);
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaThreadSynchronize();
    }
  };
  return w;
}

TEST(NvprofLike, AttributesConsumptionBySyncCall) {
  const ProfileResult r = run_nvprof_like(sync_heavy_workload());
  ASSERT_FALSE(r.crashed);
  ASSERT_FALSE(r.entries.empty());
  EXPECT_EQ(r.entries[0].api_name, "cudaThreadSynchronize");
  EXPECT_EQ(r.entries[0].position, 1);
  EXPECT_EQ(r.entries[0].calls, 20u);
  // The syncs are nearly all of execution — the consumption-vs-benefit
  // gap the paper's Table 2 is about.
  EXPECT_GT(r.entries[0].fraction_of_exec, 0.9);
}

TEST(NvprofLike, RanksDescendingWithPositions) {
  const ProfileResult r = run_nvprof_like(sync_heavy_workload());
  for (std::size_t i = 1; i < r.entries.size(); ++i) {
    EXPECT_GE(r.entries[i - 1].time, r.entries[i].time);
    EXPECT_EQ(r.entries[i].position, static_cast<int>(i) + 1);
  }
}

TEST(NvprofLike, CrashesBeyondRecordBudget) {
  NvprofOptions opts;
  opts.max_records = 10;
  const ProfileResult r = run_nvprof_like(sync_heavy_workload(50), opts);
  EXPECT_TRUE(r.crashed);
  EXPECT_NE(r.crash_reason.find("overflow"), std::string::npos);
  EXPECT_TRUE(r.entries.empty());
}

TEST(NvprofLike, FindLocatesEntries) {
  const ProfileResult r = run_nvprof_like(sync_heavy_workload());
  EXPECT_NE(r.find("cudaThreadSynchronize"), nullptr);
  EXPECT_NE(r.find("cudaLaunchKernel"), nullptr);
  EXPECT_EQ(r.find("cudaMemcpy"), nullptr);
}

TEST(HpctoolkitLike, SamplingUnderattributesShortCalls) {
  const ffm::Workload w = sync_heavy_workload();
  const ProfileResult nv = run_nvprof_like(w);
  const ProfileResult hp = run_hpctoolkit_like(w);
  ASSERT_FALSE(hp.crashed);

  // Long waits are seen by both...
  const ProfileEntry* nv_sync = nv.find("cudaThreadSynchronize");
  const ProfileEntry* hp_sync = hp.find("cudaThreadSynchronize");
  ASSERT_NE(nv_sync, nullptr);
  ASSERT_NE(hp_sync, nullptr);
  EXPECT_NEAR(static_cast<double>(hp_sync->time.count()),
              static_cast<double>(nv_sync->time.count()),
              static_cast<double>(nv_sync->time.count()) * 0.25);

  // ...but microsecond-scale launches rarely catch a 500 us sample: the
  // systematic HPCToolkit underattribution from Table 2 / §5.2.
  const ProfileEntry* nv_launch = nv.find("cudaLaunchKernel");
  const ProfileEntry* hp_launch = hp.find("cudaLaunchKernel");
  ASSERT_NE(nv_launch, nullptr);
  const Duration hp_launch_time =
      hp_launch != nullptr ? hp_launch->time : Duration{0};
  EXPECT_LT(hp_launch_time, nv_launch->time);
}

TEST(HpctoolkitLike, SurvivesWorkloadsThatCrashNvprof) {
  NvprofOptions nv_opts;
  nv_opts.max_records = 10;
  const ffm::Workload w = sync_heavy_workload(50);
  EXPECT_TRUE(run_nvprof_like(w, nv_opts).crashed);
  EXPECT_FALSE(run_hpctoolkit_like(w).crashed);
}

TEST(Profilers, BlindToPrivateApiWork) {
  ffm::Workload w;
  w.name = "private_only";
  w.device = gpusim::DeviceConfig{};
  w.body = [] {
    void* dev = gpusim::priv::cuPrivMemAlloc(1024);
    KernelDesc k;
    k.name = "k";
    k.duration = ms(1);
    gpusim::priv::cuPrivLaunchKernel(k);
    gpusim::priv::cuPrivSync();
    gpusim::priv::cuPrivMemFree(dev);
  };
  const ProfileResult r = run_nvprof_like(w);
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.entries.empty());  // an empty profile for a busy app
  EXPECT_GT(r.exec_time, ms(1));
}

TEST(Profilers, RenderProfileFormats) {
  const ProfileResult r = run_nvprof_like(sync_heavy_workload());
  const std::string text = render_profile(r);
  EXPECT_NE(text.find("nvprof_like profile"), std::string::npos);
  EXPECT_NE(text.find("cudaThreadSynchronize"), std::string::npos);

  ProfileResult crashed;
  crashed.profiler = "nvprof_like";
  crashed.crashed = true;
  crashed.crash_reason = "boom";
  EXPECT_NE(render_profile(crashed).find("Profiler Crashed"),
            std::string::npos);
}

TEST(Profilers, OverheadChargedToApplication) {
  const ffm::Workload w = sync_heavy_workload();
  const Duration native = ffm::run_uninstrumented(w);
  NvprofOptions opts;
  opts.callback_cost = us(50);
  const ProfileResult r = run_nvprof_like(w, opts);
  EXPECT_GT(r.exec_time, native);
}

}  // namespace
}  // namespace diog::baselines
