// Tests of the automatic-correction prototype (paper §6 future work):
// each evaluation app must yield the remedy the paper actually applied,
#include <map>
// ranked by benefit, with sane evidence and thresholds.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/autofix.h"
#include "support/error.h"

namespace diog::ffm {
namespace {

const AnalysisResult& analysis_for(const std::string& name) {
  static std::map<std::string, AnalysisResult> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  for (const auto& app : apps::all_apps()) {
    if (app.name == name) {
      Diogenes tool(app.pathological);
      return cache.emplace(name, tool.analyze()).first->second;
    }
  }
  throw Error("unknown app " + name);
}

const FixRecommendation* find_remedy(
    const std::vector<FixRecommendation>& recs, RemedyKind kind) {
  for (const auto& r : recs) {
    if (r.remedy == kind) return &r;
  }
  return nullptr;
}

TEST(Autofix, CumfAlsTopRemedyIsHoistAllocFree) {
  const auto recs = recommend_fixes(analysis_for("cumf_als"));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].remedy, RemedyKind::kHoistAllocFree);
  EXPECT_GT(recs[0].fraction_of_exec, 0.10);
  EXPECT_GT(recs[0].sites.size(), 10u);  // the 20 per-iteration frees
}

TEST(Autofix, CumfAlsRecommendsCachingDuplicateUploads) {
  const auto recs = recommend_fixes(analysis_for("cumf_als"));
  const FixRecommendation* cache_fix =
      find_remedy(recs, RemedyKind::kCacheTransfer);
  ASSERT_NE(cache_fix, nullptr);
  EXPECT_EQ(cache_fix->sites.size(), 2u);  // tiles A and B
  // 59 of 60 iterations re-upload both tiles.
  EXPECT_EQ(cache_fix->occurrences, 118u);
  EXPECT_NE(cache_fix->safety_note.find("mprotect"), std::string::npos);
}

TEST(Autofix, CumfAlsRemoveSyncIsLowPriority) {
  // The deviceSynchronize calls: a remedy exists, but it ranks last —
  // the paper's entire point.
  const auto recs = recommend_fixes(analysis_for("cumf_als"));
  const FixRecommendation* hoist =
      find_remedy(recs, RemedyKind::kHoistAllocFree);
  const FixRecommendation* remove =
      find_remedy(recs, RemedyKind::kRemoveSync);
  ASSERT_NE(hoist, nullptr);
  if (remove != nullptr) {
    EXPECT_LT(remove->expected_benefit, hoist->expected_benefit / 5);
  }
}

TEST(Autofix, CuibmRecommendsPoolingThrustTemporaries) {
  const auto recs = recommend_fixes(analysis_for("cuIBM"));
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].remedy, RemedyKind::kHoistAllocFree);
  // The sites carry the Thrust template locations.
  bool thrust_site = false;
  for (const std::string& s : recs[0].sites) {
    if (s.find("thrustlike.h") != std::string::npos) thrust_site = true;
  }
  EXPECT_TRUE(thrust_site);
}

TEST(Autofix, AmgRecommendsHostMemset) {
  const auto recs = recommend_fixes(analysis_for("AMG"));
  const FixRecommendation* memset_fix =
      find_remedy(recs, RemedyKind::kHostMemset);
  ASSERT_NE(memset_fix, nullptr);
  // It is the top recommendation, as it was the paper's AMG fix.
  EXPECT_EQ(recs[0].remedy, RemedyKind::kHostMemset);
  EXPECT_NE(memset_fix->action.find("plain memset"), std::string::npos);
  ASSERT_EQ(memset_fix->sites.size(), 1u);
  EXPECT_NE(memset_fix->sites[0].find("par_relax.c"), std::string::npos);
}

TEST(Autofix, RodiniaRecommendsRemovingThreadSyncs) {
  const auto recs = recommend_fixes(analysis_for("Rodinia"));
  const FixRecommendation* remove =
      find_remedy(recs, RemedyKind::kRemoveSync);
  ASSERT_NE(remove, nullptr);
  EXPECT_EQ(remove->sites.size(), 2u);  // the two per-row sync lines
  EXPECT_EQ(remove->occurrences, 512u);
  EXPECT_NE(remove->safety_note.find("negligible"), std::string::npos);
}

TEST(Autofix, ThresholdSuppressesTinyFixes) {
  AutofixOptions strict;
  strict.min_benefit_fraction = 0.99;  // nothing clears this
  EXPECT_TRUE(recommend_fixes(analysis_for("Rodinia"), strict).empty());
}

TEST(Autofix, RecommendationsSortedByBenefit) {
  const auto recs = recommend_fixes(analysis_for("cumf_als"));
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].expected_benefit, recs[i].expected_benefit);
  }
}

TEST(Autofix, JsonSerialization) {
  const auto recs = recommend_fixes(analysis_for("AMG"));
  ASSERT_FALSE(recs.empty());
  const json::Value v = recs[0].to_json();
  EXPECT_EQ(v.at("remedy").as_string(), "host-memset");
  EXPECT_GT(v.at("expected_benefit_ns").as_int(), 0);
  EXPECT_GT(v.at("sites").size(), 0u);
  EXPECT_FALSE(v.at("action").as_string().empty());
}

TEST(Autofix, RenderIncludesActionsAndSafety) {
  const AnalysisResult& r = analysis_for("AMG");
  const auto recs = recommend_fixes(r);
  const std::string text = render_recommendations(r, recs);
  EXPECT_NE(text.find("host-memset"), std::string::npos);
  EXPECT_NE(text.find("action:"), std::string::npos);
  EXPECT_NE(text.find("safety:"), std::string::npos);
}

TEST(Autofix, RemedyNames) {
  EXPECT_EQ(to_string(RemedyKind::kHoistAllocFree), "hoist-alloc-free");
  EXPECT_EQ(to_string(RemedyKind::kHostMemset), "host-memset");
  EXPECT_EQ(to_string(RemedyKind::kRemoveSync), "remove-sync");
  EXPECT_EQ(to_string(RemedyKind::kCacheTransfer), "cache-transfer");
  EXPECT_EQ(to_string(RemedyKind::kMoveSyncLater), "move-sync-later");
}

}  // namespace
}  // namespace diog::ffm
