#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "json/json.h"
#include "support/error.h"

namespace diog::json {
namespace {

// --- Value construction & accessors ------------------------------------------

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
}

TEST(JsonValue, BoolRoundTrip) {
  Value v(true);
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.as_bool());
  EXPECT_FALSE(Value(false).as_bool());
}

TEST(JsonValue, IntRoundTrip) {
  Value v(std::int64_t{-42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int(), -42);
}

TEST(JsonValue, DoubleRoundTrip) {
  Value v(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 3.5);
}

TEST(JsonValue, IntAccessibleAsDouble) {
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
}

TEST(JsonValue, StringRoundTrip) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(JsonValue, TypeMismatchThrows) {
  Value v("text");
  EXPECT_THROW((void)v.as_int(), Error);
  EXPECT_THROW((void)v.as_bool(), Error);
  EXPECT_THROW((void)v.as_array(), Error);
  EXPECT_THROW((void)Value(1).as_string(), Error);
}

TEST(JsonValue, ObjectSubscriptCreates) {
  Value v;
  v["a"] = 1;
  v["b"]["nested"] = "x";
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("nested").as_string(), "x");
}

TEST(JsonValue, ObjectMissingKeyThrows) {
  Value v;
  v["a"] = 1;
  EXPECT_THROW((void)v.at("zz"), Error);
}

TEST(JsonValue, Contains) {
  Value v;
  v["k"] = nullptr;
  EXPECT_TRUE(v.contains("k"));
  EXPECT_FALSE(v.contains("other"));
  EXPECT_FALSE(Value(3).contains("k"));
}

TEST(JsonValue, ArrayIndexing) {
  Value v(Array{Value(1), Value(2), Value(3)});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(std::size_t{1}).as_int(), 2);
  EXPECT_THROW((void)v.at(std::size_t{3}), Error);
}

TEST(JsonValue, Equality) {
  Value a(Array{Value(1), Value("x")});
  Value b(Array{Value(1), Value("x")});
  EXPECT_EQ(a, b);
  Value c(Array{Value(1)});
  EXPECT_FALSE(a == c);
}

// --- Serialization --------------------------------------------------------------

TEST(JsonDump, Scalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-1).dump(), "-1");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonDump, StringEscapes) {
  EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Value("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Value("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Value("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Value(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(JsonDump, EmptyContainers) {
  EXPECT_EQ(Value(Array{}).dump(), "[]");
  EXPECT_EQ(Value(Object{}).dump(), "{}");
}

TEST(JsonDump, ObjectKeysSorted) {
  Value v;
  v["zebra"] = 1;
  v["apple"] = 2;
  EXPECT_EQ(v.dump(), "{\"apple\":2,\"zebra\":1}");
}

TEST(JsonDump, PrettyIndents) {
  Value v;
  v["a"] = Value(Array{Value(1)});
  EXPECT_EQ(v.dump_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonDump, DoubleStaysPrecise) {
  const double x = 0.1084;
  const Value parsed = parse(Value(x).dump());
  EXPECT_DOUBLE_EQ(parsed.as_double(), x);
}

// --- Parser -----------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("123").as_int(), 123);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-1.5E-2").as_double(), -0.015);
  EXPECT_EQ(parse("\"str\"").as_string(), "str");
}

TEST(JsonParse, IntegerStaysInt) {
  EXPECT_TRUE(parse("9007199254740993").is_int());  // > 2^53
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993LL);
}

TEST(JsonParse, HugeIntegerFallsBackToDouble) {
  EXPECT_TRUE(parse("99999999999999999999999999").is_double());
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n\t\"a\" :  [ 1 , 2 ]\r\n}  ");
  EXPECT_EQ(v.at("a").at(std::size_t{1}).as_int(), 2);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a":{"b":[{"c":1},{"c":2}]},"d":null})");
  EXPECT_EQ(v.at("a").at("b").at(std::size_t{1}).at("c").as_int(), 2);
  EXPECT_TRUE(v.at("d").is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\/b")").as_string(), "a/b");
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("aAb")").as_string(), "aAb");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(parse(R"("中")").as_string(), "\xe4\xb8\xad");   // 中
  // Surrogate pair: U+1F600
  EXPECT_EQ(parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, UnpairedSurrogateRejected) {
  EXPECT_THROW(parse(R"("\ud83d")"), Error);
  EXPECT_THROW(parse(R"("\ude00")"), Error);
}

TEST(JsonParse, MalformedInputsRejected) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,2"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\":}"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("{a:1}"), Error);
  EXPECT_THROW(parse("tru"), Error);
  EXPECT_THROW(parse("nul"), Error);
  EXPECT_THROW(parse("01x"), Error);
  EXPECT_THROW(parse("1."), Error);
  EXPECT_THROW(parse("1e"), Error);
  EXPECT_THROW(parse("-"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("\"bad\\q\""), Error);
}

TEST(JsonParse, TrailingGarbageRejected) {
  EXPECT_THROW(parse("1 2"), Error);
  EXPECT_THROW(parse("{} extra"), Error);
  EXPECT_NO_THROW(parse("{}   \n"));
}

TEST(JsonParse, ControlCharacterInStringRejected) {
  EXPECT_THROW(parse("\"a\nb\""), Error);
}

TEST(JsonParse, ErrorMessageCarriesLineAndColumn) {
  try {
    parse("{\n  \"a\": bad\n}");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
  }
}

TEST(JsonRoundTrip, ComplexDocument) {
  Value v;
  v["name"] = "diogenes";
  v["version"] = 1;
  v["pi"] = 3.14159;
  v["flags"] = Value(Array{Value(true), Value(false), Value(nullptr)});
  Value inner;
  inner["deep"] = Value(Array{Value("x"), Value(Object{})});
  v["inner"] = inner;

  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(parse(v.dump_pretty()), v);
}

TEST(JsonRoundTrip, DumpIsStable) {
  Value v;
  v["b"] = 2;
  v["a"] = 1;
  const std::string once = v.dump_pretty();
  EXPECT_EQ(parse(once).dump_pretty(), once);
}

// --- File I/O -----------------------------------------------------------------------

TEST(JsonFile, SaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "diog_json_test.json")
          .string();
  Value v;
  v["stage"] = 3;
  v["items"] = Value(Array{Value(1), Value(2)});
  save_file(path, v);
  EXPECT_EQ(load_file(path), v);
  std::remove(path.c_str());
}

TEST(JsonFile, MissingFileThrows) {
  EXPECT_THROW(load_file("/nonexistent/dir/x.json"), Error);
}

}  // namespace
}  // namespace diog::json
