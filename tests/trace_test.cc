#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "trace/callstack.h"

namespace diog::trace {
namespace {

TEST(FrameTable, InterningIsIdempotent) {
  auto& table = FrameTable::instance();
  const Frame* a = table.intern("foo", "f.cc", 10);
  const Frame* b = table.intern("foo", "f.cc", 10);
  EXPECT_EQ(a, b);
}

TEST(FrameTable, DistinctLocationsDistinctFrames) {
  auto& table = FrameTable::instance();
  const Frame* a = table.intern("foo", "f.cc", 10);
  EXPECT_NE(a, table.intern("foo", "f.cc", 11));
  EXPECT_NE(a, table.intern("foo", "g.cc", 10));
  EXPECT_NE(a, table.intern("bar", "f.cc", 10));
}

// Regression for the documented thread-safety contract: hook callbacks
// and run readers intern from arbitrary threads; racing interns of the
// same location must agree on one Frame* and never corrupt the table.
TEST(FrameTable, ConcurrentInterningIsSafeAndConsistent) {
  auto& table = FrameTable::instance();
  constexpr int kThreads = 8;
  constexpr int kLocations = 64;
  constexpr int kRounds = 50;

  std::vector<std::vector<const Frame*>> seen(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      auto& mine = seen[t];
      mine.resize(kLocations);
      for (int round = 0; round < kRounds; ++round) {
        for (int loc = 0; loc < kLocations; ++loc) {
          const Frame* f = table.intern(
              "concurrent_fn_" + std::to_string(loc), "conc.cc", loc);
          if (round == 0) {
            mine[loc] = f;
          } else {
            // Stable across repeated interns from this thread.
            ASSERT_EQ(mine[loc], f);
          }
        }
      }
    });
  }
  go.store(true);
  for (std::thread& th : threads) th.join();

  // Every thread resolved every location to the same frame.
  for (int t = 1; t < kThreads; ++t) {
    for (int loc = 0; loc < kLocations; ++loc) {
      EXPECT_EQ(seen[0][loc], seen[t][loc]) << "location " << loc;
    }
  }
  // And the table holds exactly one frame per distinct location.
  const Frame* probe = table.intern("concurrent_fn_0", "conc.cc", 0);
  EXPECT_EQ(probe, seen[0][0]);
}

TEST(FrameTable, FoldedNameComputedAtIntern) {
  const Frame* f = FrameTable::instance().intern(
      "thrust::reduce<float>", "t.h", 5);
  EXPECT_EQ(f->folded_function, "thrust::reduce<...>");
}

TEST(Frame, PrettyFormat) {
  const Frame* f =
      FrameTable::instance().intern("cudaFree", "als.cpp", 856);
  EXPECT_EQ(f->pretty(), "cudaFree in als.cpp at line 856");
}

TEST(CallContext, PushPopMaintainsDepth) {
  CallContext& ctx = CallContext::current();
  const std::size_t base = ctx.depth();
  {
    ScopedFrame f1("a", "x.cc", 1);
    EXPECT_EQ(ctx.depth(), base + 1);
    {
      ScopedFrame f2("b", "x.cc", 2);
      EXPECT_EQ(ctx.depth(), base + 2);
    }
    EXPECT_EQ(ctx.depth(), base + 1);
  }
  EXPECT_EQ(ctx.depth(), base);
}

TEST(CallContext, CaptureOrdersOutermostFirst) {
  ScopedFrame f1("outer", "x.cc", 1);
  ScopedFrame f2("inner", "x.cc", 2);
  const StackTrace st = CallContext::current().capture();
  ASSERT_GE(st.depth(), 2u);
  EXPECT_EQ(st.frames()[st.depth() - 2]->function, "outer");
  EXPECT_EQ(st.leaf()->function, "inner");
}

TEST(CallContext, CaptureIntoRespectsMax) {
  ScopedFrame f1("a", "x.cc", 1);
  ScopedFrame f2("b", "x.cc", 2);
  ScopedFrame f3("c", "x.cc", 3);
  const Frame* buf[2];
  const std::size_t n = CallContext::current().capture_into(buf, 2);
  ASSERT_EQ(n, 2u);
  // Innermost frames are kept when truncating.
  EXPECT_EQ(buf[1]->function, "c");
  EXPECT_EQ(buf[0]->function, "b");
}

TEST(StackTrace, ExactEqualityByPointerIdentity) {
  StackTrace a, b;
  {
    ScopedFrame f1("fn", "x.cc", 9);
    a = CallContext::current().capture();
  }
  {
    ScopedFrame f1("fn", "x.cc", 9);
    b = CallContext::current().capture();
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.exact_key(), b.exact_key());
}

TEST(StackTrace, DifferentLinesDifferExactly) {
  StackTrace a, b;
  {
    ScopedFrame f1("fn", "x.cc", 9);
    a = CallContext::current().capture();
  }
  {
    ScopedFrame f1("fn", "x.cc", 10);
    b = CallContext::current().capture();
  }
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.exact_key(), b.exact_key());
}

TEST(StackTrace, FoldedEqualityMergesTemplateInstances) {
  StackTrace a, b;
  {
    ScopedFrame f("storage<float>::free", "t.h", 31);
    a = CallContext::current().capture();
  }
  {
    ScopedFrame f("storage<double>::free", "t.h", 31);
    b = CallContext::current().capture();
  }
  EXPECT_FALSE(a == b);               // exact identity differs
  EXPECT_TRUE(a.folded_equals(b));    // folded identity matches
  EXPECT_EQ(a.folded_key(), b.folded_key());
}

TEST(StackTrace, FoldedInequalityForDifferentFunctions) {
  StackTrace a, b;
  {
    ScopedFrame f("alloc<float>", "t.h", 31);
    a = CallContext::current().capture();
  }
  {
    ScopedFrame f("release<float>", "t.h", 31);
    b = CallContext::current().capture();
  }
  EXPECT_FALSE(a.folded_equals(b));
}

TEST(StackTrace, FoldedEqualsRequiresSameDepth) {
  StackTrace a, b;
  {
    ScopedFrame f1("x", "x.cc", 1);
    a = CallContext::current().capture();
    ScopedFrame f2("x", "x.cc", 1);
    b = CallContext::current().capture();
  }
  EXPECT_FALSE(a.folded_equals(b));
}

TEST(StackTrace, JsonRoundTripPreservesIdentity) {
  StackTrace original;
  {
    ScopedFrame f1("update_x", "als.cpp", 700);
    ScopedFrame f2("cudaFree_site", "als.cpp", 856);
    original = CallContext::current().capture();
  }
  const StackTrace restored = StackTrace::from_json(original.to_json());
  EXPECT_EQ(original, restored);  // interning: same pointers
}

TEST(StackTrace, EmptyStack) {
  StackTrace st;
  EXPECT_TRUE(st.empty());
  EXPECT_EQ(st.leaf(), nullptr);
  EXPECT_EQ(st.depth(), 0u);
  EXPECT_EQ(StackTrace::from_json(st.to_json()), st);
}

TEST(StackTrace, PrettyListsInnermostFirst) {
  StackTrace st;
  {
    ScopedFrame f1("outer", "o.cc", 1);
    ScopedFrame f2("inner", "i.cc", 2);
    st = CallContext::current().capture();
  }
  const std::string text = st.pretty();
  const auto inner_pos = text.find("inner");
  const auto outer_pos = text.find("outer");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(CallContext, ClearEmpties) {
  // Use a scope guard-free push so we can clear safely.
  CallContext& ctx = CallContext::current();
  const Frame* f = FrameTable::instance().intern("tmp", "t.cc", 1);
  ctx.push(f);
  EXPECT_GE(ctx.depth(), 1u);
  ctx.clear();
  EXPECT_EQ(ctx.depth(), 0u);
}

}  // namespace
}  // namespace diog::trace
