// Differential fix evaluation: the Table-1 methodology as a library.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/compare.h"

namespace diog::ffm {
namespace {

FixOutcome rodinia_outcome() {
  apps::RodiniaGaussianConfig cfg;
  cfg.matrix_dim = 64;
  return evaluate_fix(apps::make_rodinia_gaussian(cfg),
                      apps::make_rodinia_gaussian(cfg, true));
}

TEST(CompareAnalyses, RodiniaFixResolvesThreadSyncFold) {
  const FixOutcome o = rodinia_outcome();
  EXPECT_GT(o.realized().count(), 0);

  bool thread_sync_resolved = false;
  for (const GroupDelta& d : o.deltas) {
    if (d.title == "Fold on cudaThreadSynchronize") {
      EXPECT_GT(d.before.count(), 0);
      EXPECT_TRUE(d.disappeared());
      thread_sync_resolved = true;
    }
  }
  EXPECT_TRUE(thread_sync_resolved);
  EXPECT_TRUE(o.new_problems.empty());
}

TEST(CompareAnalyses, AccuracyInTablOneBand) {
  const FixOutcome o = rodinia_outcome();
  EXPECT_GT(o.accuracy(), 0.5);
  EXPECT_LE(o.accuracy(), 1.0);
}

TEST(CompareAnalyses, AmgFixResolvesMemsetOnly) {
  apps::AmgConfig cfg;
  cfg.solve_iterations = 30;
  const FixOutcome o = evaluate_fix(apps::make_amg(cfg),
                                    apps::make_amg(cfg, true));
  bool memset_resolved = false;
  for (const GroupDelta& d : o.deltas) {
    if (d.title == "Fold on cudaMemset") {
      EXPECT_TRUE(d.disappeared());
      memset_resolved = true;
    }
    // The frees were not part of the AMG fix: their fold remains.
    if (d.title == "Fold on cudaFree") {
      EXPECT_GT(d.after.count(), 0);
    }
  }
  EXPECT_TRUE(memset_resolved);
}

TEST(CompareAnalyses, IdenticalRunsShowNoChange) {
  apps::RodiniaGaussianConfig cfg;
  cfg.matrix_dim = 32;
  const Workload w = apps::make_rodinia_gaussian(cfg);
  const FixOutcome o = evaluate_fix(w, w);
  EXPECT_EQ(o.realized(), Duration{0});
  EXPECT_EQ(o.estimated_for_resolved, Duration{0});
  EXPECT_TRUE(o.new_problems.empty());
}

TEST(CompareAnalyses, ReversedComparisonFlagsNewProblems) {
  apps::RodiniaGaussianConfig cfg;
  cfg.matrix_dim = 32;
  // "Fixing" from the fixed variant back to the pathological one: the
  // thread-sync fold APPEARS — a regression the report must call out.
  const FixOutcome o =
      evaluate_fix(apps::make_rodinia_gaussian(cfg, true),
                   apps::make_rodinia_gaussian(cfg));
  ASSERT_FALSE(o.new_problems.empty());
  EXPECT_NE(std::find(o.new_problems.begin(), o.new_problems.end(),
                      "Fold on cudaThreadSynchronize"),
            o.new_problems.end());
}

TEST(CompareAnalyses, RenderedReport) {
  const FixOutcome o = rodinia_outcome();
  const std::string text = render_fix_outcome(o);
  EXPECT_NE(text.find("Fix evaluation"), std::string::npos);
  EXPECT_NE(text.find("realized"), std::string::npos);
  EXPECT_NE(text.find("accuracy"), std::string::npos);
  EXPECT_NE(text.find("[resolved]"), std::string::npos);
}

}  // namespace
}  // namespace diog::ffm
