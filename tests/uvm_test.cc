// Tests of the unified-memory migration model (runtime side) and the
// §5.3-extension analysis (tool side).
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/uvm_analysis.h"
#include "gpusim/api.h"
#include "gpusim/runtime.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::Allocation;
using gpusim::KernelDesc;

gpusim::DeviceConfig uvm_config() {
  gpusim::DeviceConfig d;
  d.model_managed_migration = true;
  d.uvm_bandwidth_bytes_per_s = 1e9;  // 1 MB -> 1 ms, easy arithmetic
  d.uvm_fault_latency = us(25);
  return d;
}

// --- Runtime-side migration model ------------------------------------------

TEST(UvmRuntime, ManagedStartsCpuResident) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);
  const Allocation* a = rt.memory().find(m);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->residency, Allocation::Residency::kCpu);
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, KernelAccessMigratesToGpuWithoutCpuBlock) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);

  KernelDesc k;
  k.name = "k";
  k.duration = ms(2);
  k.managed_accesses = {m};
  const Duration before = rt.clock().now();
  (void)gpusim::cudaLaunchKernel(k);
  // The launch returned without blocking on the ~1 ms migration.
  EXPECT_LT(rt.clock().now() - before, ms(1));
  EXPECT_EQ(rt.memory().find(m)->residency, Allocation::Residency::kGpu);

  // The migration queued ahead of the kernel: total stream time ~3 ms.
  (void)gpusim::cudaDeviceSynchronize();
  EXPECT_GE(rt.clock().now(), ms(3));
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, CpuAccessOfGpuResidentStalls) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = ms(5);
  k.managed_accesses = {m};
  (void)gpusim::cudaLaunchKernel(k);

  // CPU touch: waits for the kernel AND the ~1 ms migration back.
  const Duration stall = gpusim::managed_cpu_access(m);
  EXPECT_GE(stall, ms(6));
  EXPECT_EQ(rt.memory().find(m)->residency, Allocation::Residency::kCpu);
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, CpuAccessOfCpuResidentIsFree) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);
  EXPECT_EQ(gpusim::managed_cpu_access(m), Duration{0});
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, AlreadyResidentKernelAccessNoSecondMigration) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = us(100);
  k.managed_accesses = {m};
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaDeviceSynchronize();
  const Duration t1 = rt.clock().now();
  (void)gpusim::cudaLaunchKernel(k);  // already GPU-resident
  (void)gpusim::cudaDeviceSynchronize();
  // Second round: just the kernel, no ~1 ms migration.
  EXPECT_LT(rt.clock().now() - t1, us(300));
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, ModelOffMeansNoMigrationsAndNoStalls) {
  gpusim::DeviceConfig cfg = uvm_config();
  cfg.model_managed_migration = false;
  gpusim::Runtime rt(cfg);
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 1 << 20);
  KernelDesc k;
  k.name = "k";
  k.duration = ms(1);
  k.managed_accesses = {m};
  (void)gpusim::cudaLaunchKernel(k);
  EXPECT_EQ(gpusim::managed_cpu_access(m), Duration{0});
  (void)gpusim::cudaDeviceSynchronize();
  (void)gpusim::cudaFree(m);
}

TEST(UvmRuntime, NonManagedPointerIgnored) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* dev = nullptr;
  (void)gpusim::cudaMalloc(&dev, 4096);
  EXPECT_EQ(gpusim::managed_cpu_access(dev), Duration{0});
  (void)gpusim::cudaFree(dev);
}

TEST(UvmRuntime, MemsetMovesResidencyGpu) {
  gpusim::Runtime rt(uvm_config());
  gpusim::RuntimeScope scope(rt);
  void* m = nullptr;
  (void)gpusim::cudaMallocManaged(&m, 4096);
  (void)gpusim::cudaMemset(m, 0, 4096);
  EXPECT_EQ(rt.memory().find(m)->residency, Allocation::Residency::kGpu);
  (void)gpusim::cudaFree(m);
}

// --- Tool-side analysis -------------------------------------------------------

TEST(UvmAnalysisTest, DetectsThrashingHalo) {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 20;
  const UvmAnalysis a =
      analyze_unified_memory(apps::make_uvm_stencil(cfg));

  ASSERT_FALSE(a.ranges.empty());
  // The halo thrashes: one round trip per step (first step: to-GPU only).
  const UvmRangeReport& halo = a.ranges[0];
  EXPECT_TRUE(halo.thrashing);
  EXPECT_EQ(halo.to_gpu_migrations, cfg.timesteps);
  EXPECT_EQ(halo.to_cpu_migrations, cfg.timesteps - 1);
  EXPECT_GT(halo.avoidable_stall.count(), 0);
  // The fault stack points at the halo update.
  ASSERT_NE(halo.fault_stack.leaf(), nullptr);
  EXPECT_EQ(halo.fault_stack.leaf()->function, "update_halo");

  // The grid migrates to the GPU once and faults back once at the end:
  // not thrashing, no avoidable stall.
  bool grid_seen = false;
  for (const UvmRangeReport& r : a.ranges) {
    if (r.range_addr == halo.range_addr) continue;
    grid_seen = true;
    EXPECT_FALSE(r.thrashing);
    EXPECT_EQ(r.avoidable_stall, Duration{0});
  }
  EXPECT_TRUE(grid_seen);
}

TEST(UvmAnalysisTest, EstimateMatchesActualFixWithinBand) {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 50;
  const Duration native =
      run_uninstrumented(apps::make_uvm_stencil(cfg));
  const Duration fixed =
      run_uninstrumented(apps::make_uvm_stencil(cfg, true));
  const Duration actual = native - fixed;

  const UvmAnalysis a =
      analyze_unified_memory(apps::make_uvm_stencil(cfg));
  ASSERT_GT(a.estimated_benefit.count(), 0);
  ASSERT_GT(actual.count(), 0);
  const double ratio = static_cast<double>(a.estimated_benefit.count()) /
                       static_cast<double>(actual.count());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.6);
}

TEST(UvmAnalysisTest, FixedVariantShowsNoThrash) {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 20;
  const UvmAnalysis a =
      analyze_unified_memory(apps::make_uvm_stencil(cfg, true));
  for (const UvmRangeReport& r : a.ranges) {
    EXPECT_FALSE(r.thrashing);
  }
  EXPECT_EQ(a.estimated_benefit, Duration{0});
}

TEST(UvmAnalysisTest, BlindWithoutMigrationModel) {
  // Baseline Diogenes parity: with the model off, the analysis sees
  // nothing — exactly the limitation §5.3 describes.
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 5;
  ffm::Workload w = apps::make_uvm_stencil(cfg);
  w.device.model_managed_migration = false;
  const UvmAnalysis a = analyze_unified_memory(w);
  EXPECT_TRUE(a.migrations.empty());
  EXPECT_TRUE(a.ranges.empty());
}

TEST(UvmAnalysisTest, RenderAndJson) {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 10;
  const UvmAnalysis a =
      analyze_unified_memory(apps::make_uvm_stencil(cfg));
  const std::string text = render_uvm(a);
  EXPECT_NE(text.find("THRASHING"), std::string::npos);
  EXPECT_NE(text.find("first CPU fault at"), std::string::npos);
  const json::Value v = a.to_json();
  EXPECT_GT(v.at("migration_count").as_int(), 0);
  EXPECT_GT(v.at("ranges").size(), 0u);
  EXPECT_NO_THROW((void)json::parse(v.dump()));
}

TEST(UvmAnalysisTest, StencilFixIsFaster) {
  apps::UvmStencilConfig cfg;
  cfg.timesteps = 30;
  EXPECT_LT(run_uninstrumented(apps::make_uvm_stencil(cfg, true)),
            run_uninstrumented(apps::make_uvm_stencil(cfg)));
}

}  // namespace
}  // namespace diog::ffm
