// Tests for the extended runtime API surface: cross-stream event
// dependencies, non-blocking queries, host registration (which changes
// the conditional-sync behaviour of async copies), 2D transfers, and
// device information.
#include <gtest/gtest.h>

#include <cstring>

#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "gpusim/runtime.h"

namespace gpusim {
namespace {

using diog::Duration;

class GpusimExtTest : public ::testing::Test {
 protected:
  GpusimExtTest() : rt_(make_config()), scope_(rt_) {}

  static DeviceConfig make_config() {
    DeviceConfig d;
    d.h2d_bandwidth_bytes_per_s = 1e9;
    d.d2h_bandwidth_bytes_per_s = 1e9;
    d.transfer_latency = diog::us(10);
    return d;
  }

  static KernelDesc kernel(Duration dur) {
    KernelDesc k;
    k.name = "k";
    k.duration = dur;
    return k;
  }

  Runtime rt_;
  RuntimeScope scope_;
};

// --- cudaStreamWaitEvent ------------------------------------------------------

TEST_F(GpusimExtTest, StreamWaitEventOrdersAcrossStreams) {
  StreamId producer, consumer;
  (void)cudaStreamCreate(&producer);
  (void)cudaStreamCreate(&consumer);

  (void)cudaLaunchKernel(kernel(diog::ms(10)), producer);
  EventId done;
  (void)cudaEventCreate(&done);
  (void)cudaEventRecord(done, producer);

  // The consumer's kernel must start only after the producer's finishes.
  ASSERT_EQ(cudaStreamWaitEvent(consumer, done), cudaSuccess);
  (void)cudaLaunchKernel(kernel(diog::ms(5)), consumer);

  (void)cudaStreamSynchronize(consumer);
  EXPECT_GE(rt_.clock().now(), diog::ms(15));  // serialized: 10 + 5
  (void)cudaEventDestroy(done);
  (void)cudaStreamDestroy(producer);
  (void)cudaStreamDestroy(consumer);
}

TEST_F(GpusimExtTest, StreamWaitEventDoesNotBlockCpu) {
  StreamId s;
  (void)cudaStreamCreate(&s);
  (void)cudaLaunchKernel(kernel(diog::ms(20)));
  EventId ev;
  (void)cudaEventCreate(&ev);
  (void)cudaEventRecord(ev);
  const auto before = rt_.clock().now();
  (void)cudaStreamWaitEvent(s, ev);
  EXPECT_LT(rt_.clock().now() - before, diog::ms(1));
  (void)cudaDeviceSynchronize();
}

TEST_F(GpusimExtTest, StreamWaitEventValidation) {
  EXPECT_EQ(cudaStreamWaitEvent(999, 999),
            cudaError_t::cudaErrorInvalidResourceHandle);
}

// --- Non-blocking queries --------------------------------------------------------

TEST_F(GpusimExtTest, StreamQueryReportsWithoutBlocking) {
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  const auto before = rt_.clock().now();
  EXPECT_EQ(cudaStreamQuery(kDefaultStream), cudaError_t::cudaErrorNotReady);
  EXPECT_LT(rt_.clock().now() - before, diog::ms(1));  // did not wait
  (void)cudaDeviceSynchronize();
  EXPECT_EQ(cudaStreamQuery(kDefaultStream), cudaSuccess);
}

TEST_F(GpusimExtTest, EventQueryReportsCompletion) {
  EventId ev;
  (void)cudaEventCreate(&ev);
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  (void)cudaEventRecord(ev);
  EXPECT_EQ(cudaEventQuery(ev), cudaError_t::cudaErrorNotReady);
  (void)cudaEventSynchronize(ev);
  EXPECT_EQ(cudaEventQuery(ev), cudaSuccess);
  (void)cudaEventDestroy(ev);
  EXPECT_EQ(cudaEventQuery(ev), cudaError_t::cudaErrorInvalidResourceHandle);
}

TEST_F(GpusimExtTest, QueriesDoNotPoisonLastError) {
  // cudaErrorNotReady from a query is informational in CUDA; our model
  // records it, so a GetLastError read reflects the query — verify the
  // clear-on-read contract still holds either way.
  (void)cudaLaunchKernel(kernel(diog::ms(5)));
  (void)cudaStreamQuery(kDefaultStream);
  (void)cudaGetLastError();  // drain
  EXPECT_EQ(cudaGetLastError(), cudaSuccess);
  (void)cudaDeviceSynchronize();
}

// --- cudaHostRegister ---------------------------------------------------------------

TEST_F(GpusimExtTest, HostRegisterReclassifiesAsPinned) {
  HostBuffer<char> buf(1 << 16);
  EXPECT_EQ(rt_.memory().classify(buf.data()),
            diog::hooks::MemKind::kPageable);
  ASSERT_EQ(cudaHostRegister(buf.data(), buf.size_bytes()), cudaSuccess);
  EXPECT_EQ(rt_.memory().classify(buf.data()),
            diog::hooks::MemKind::kPinned);
  EXPECT_EQ(rt_.memory().classify(buf.data() + 100),
            diog::hooks::MemKind::kPinned);
  ASSERT_EQ(cudaHostUnregister(buf.data()), cudaSuccess);
  EXPECT_EQ(rt_.memory().classify(buf.data()),
            diog::hooks::MemKind::kPageable);
}

TEST_F(GpusimExtTest, HostRegisterRemovesConditionalSync) {
  // THE point of pinning: the async D2H that silently blocked into
  // pageable memory becomes truly asynchronous after cudaHostRegister.
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 1 << 16);
  HostBuffer<char> buf(1 << 16);

  // Before registration: blocks behind the kernel.
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  auto before = rt_.clock().now();
  (void)cudaMemcpyAsync(buf.data(), dev, 1 << 16,
                        diog::hooks::MemcpyKind::kDeviceToHost);
  EXPECT_GE(rt_.clock().now() - before, diog::ms(9));

  // After registration: returns immediately.
  ASSERT_EQ(cudaHostRegister(buf.data(), buf.size_bytes()), cudaSuccess);
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  before = rt_.clock().now();
  (void)cudaMemcpyAsync(buf.data(), dev, 1 << 16,
                        diog::hooks::MemcpyKind::kDeviceToHost);
  EXPECT_LT(rt_.clock().now() - before, diog::ms(1));

  (void)cudaDeviceSynchronize();
  (void)cudaHostUnregister(buf.data());
  (void)cudaFree(dev);
}

TEST_F(GpusimExtTest, HostRegisterValidation) {
  HostBuffer<char> buf(4096);
  EXPECT_EQ(cudaHostRegister(nullptr, 100),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaHostRegister(buf.data(), 0),
            cudaError_t::cudaErrorInvalidValue);
  ASSERT_EQ(cudaHostRegister(buf.data(), 4096), cudaSuccess);
  // Overlapping double registration rejected.
  EXPECT_EQ(cudaHostRegister(buf.data() + 8, 16),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaHostUnregister(buf.data()), cudaSuccess);
  EXPECT_EQ(cudaHostUnregister(buf.data()),
            cudaError_t::cudaErrorInvalidValue);
}

TEST_F(GpusimExtTest, HostRegisterRejectsRuntimeOwnedMemory) {
  void* pinned = nullptr;
  (void)cudaMallocHost(&pinned, 4096);
  EXPECT_EQ(cudaHostRegister(pinned, 4096),
            cudaError_t::cudaErrorInvalidValue);
  (void)cudaFreeHost(pinned);
}

// --- cudaMemcpy2D --------------------------------------------------------------------

TEST_F(GpusimExtTest, Memcpy2DCopiesStridedRows) {
  // A 4x4 source copied into an 8-byte-pitch destination.
  char src[16];
  for (int i = 0; i < 16; ++i) src[i] = static_cast<char>(i);
  char dst[32];
  std::memset(dst, 0x7F, sizeof(dst));
  ASSERT_EQ(cudaMemcpy2D(dst, 8, src, 4, 4, 4,
                         diog::hooks::MemcpyKind::kHostToHost),
            cudaSuccess);
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      EXPECT_EQ(dst[row * 8 + col], static_cast<char>(row * 4 + col));
    }
    EXPECT_EQ(dst[row * 8 + 5], 0x7F);  // padding untouched
  }
}

TEST_F(GpusimExtTest, Memcpy2DDeviceRoundTrip) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 64);
  char src[64];
  for (int i = 0; i < 64; ++i) src[i] = static_cast<char>(i * 3);
  ASSERT_EQ(cudaMemcpy2D(dev, 8, src, 8, 8, 8,
                         diog::hooks::MemcpyKind::kHostToDevice),
            cudaSuccess);
  char back[64] = {};
  ASSERT_EQ(cudaMemcpy2D(back, 8, dev, 8, 8, 8,
                         diog::hooks::MemcpyKind::kDeviceToHost),
            cudaSuccess);
  EXPECT_EQ(std::memcmp(src, back, 64), 0);
  (void)cudaFree(dev);
}

TEST_F(GpusimExtTest, Memcpy2DImplicitlySynchronizes) {
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 4096);
  char host[4096];
  (void)cudaLaunchKernel(kernel(diog::ms(15)));
  (void)cudaMemcpy2D(dev, 64, host, 64, 64, 64,
                     diog::hooks::MemcpyKind::kHostToDevice);
  EXPECT_GE(rt_.clock().now(), diog::ms(15));
  EXPECT_TRUE(rt_.device().idle());
  (void)cudaFree(dev);
}

TEST_F(GpusimExtTest, Memcpy2DValidation) {
  char a[64], b[64];
  // width > pitch is illegal.
  EXPECT_EQ(cudaMemcpy2D(a, 4, b, 8, 8, 4,
                         diog::hooks::MemcpyKind::kHostToHost),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaMemcpy2D(a, 8, b, 8, 8, 0,
                         diog::hooks::MemcpyKind::kHostToHost),
            cudaError_t::cudaErrorInvalidValue);
}

// --- Device information -----------------------------------------------------------------

TEST_F(GpusimExtTest, DevicePropertiesReflectConfig) {
  cudaDeviceProp prop;
  ASSERT_EQ(cudaGetDeviceProperties(&prop, 0), cudaSuccess);
  EXPECT_EQ(prop.total_global_mem, rt_.config().device_memory_bytes);
  EXPECT_EQ(prop.major, 6);  // Pascal-class, as on the paper's Ray nodes
  EXPECT_EQ(cudaGetDeviceProperties(&prop, 1),
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaGetDeviceProperties(nullptr, 0),
            cudaError_t::cudaErrorInvalidValue);
}

TEST_F(GpusimExtTest, MemGetInfoTracksAllocations) {
  std::size_t free_before = 0, total = 0;
  ASSERT_EQ(cudaMemGetInfo(&free_before, &total), cudaSuccess);
  EXPECT_EQ(free_before, total);

  void* dev = nullptr;
  (void)cudaMalloc(&dev, 1 << 20);
  std::size_t free_after = 0;
  (void)cudaMemGetInfo(&free_after, &total);
  EXPECT_EQ(free_before - free_after, 1u << 20);
  (void)cudaFree(dev);
  (void)cudaMemGetInfo(&free_after, &total);
  EXPECT_EQ(free_after, free_before);
}

}  // namespace
}  // namespace gpusim
