#include <gtest/gtest.h>

#include "core/graph.h"

namespace diog::ffm {
namespace {

using hooks::Fn;
using hooks::MemcpyKind;
using hooks::MemKind;

OpRecord make_op(std::uint64_t index, Fn api, TimePoint enter, TimePoint exit,
                 Duration sync_wait, bool sync, bool transfer) {
  OpRecord op;
  op.index = index;
  op.api = api;
  op.t_enter = enter;
  op.t_exit = exit;
  op.sync_wait = sync_wait;
  op.performed_sync = sync;
  op.performed_transfer = transfer;
  return op;
}

TEST(GraphBuild, EmptyTraceYieldsTerminalNodeOnly) {
  Stage2Result s2;
  s2.exec_time = ms(10);
  const ExecutionGraph g = build_graph(s2, {}, {}, us(50));
  // One CWork for the whole run, one terminal CWait.
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.nodes()[0].type, NType::kCWork);
  EXPECT_EQ(g.nodes()[0].duration, ms(10));
  EXPECT_EQ(g.nodes()[1].type, NType::kCWait);
  EXPECT_EQ(g.nodes()[1].duration, Duration{0});
}

TEST(GraphBuild, SyncCallSplitsIntoLaunchAndWait) {
  Stage2Result s2;
  s2.exec_time = ms(20);
  // One deviceSynchronize: 1 ms in the call, 0.9 ms of it blocked.
  s2.ops.push_back(make_op(0, Fn::kCudaDeviceSynchronize, TimePoint{ms(5)},
                           TimePoint{ms(6)}, us(900), true, false));
  Stage3Result s3;
  SyncClassification cls;
  cls.op_index = 0;
  cls.required = false;
  s3.syncs.push_back(cls);

  const ExecutionGraph g = build_graph(s2, s3, {}, us(50));
  // CWork(0-5) + CLaunch(setup) + CWait(blocked) + CWork(6-20) + terminal.
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.nodes()[0].type, NType::kCWork);
  EXPECT_EQ(g.nodes()[0].duration, ms(5));
  EXPECT_EQ(g.nodes()[1].type, NType::kCLaunch);
  EXPECT_EQ(g.nodes()[1].duration, us(100));
  EXPECT_EQ(g.nodes()[2].type, NType::kCWait);
  EXPECT_EQ(g.nodes()[2].duration, us(900));
  EXPECT_EQ(g.nodes()[2].problem, ProblemType::kUnnecessarySync);
  EXPECT_EQ(g.nodes()[3].type, NType::kCWork);
  EXPECT_EQ(g.nodes()[3].duration, ms(14));
}

TEST(GraphBuild, TransferTailCountsAsLaunchNotWait) {
  Stage2Result s2;
  s2.exec_time = ms(10);
  // A blocking memcpy: 3 ms call; 2.5 ms measured wait of which 1 ms is
  // the transfer itself (gpu_op_duration).
  OpRecord op = make_op(0, Fn::kCudaMemcpy, TimePoint{ms(1)},
                        TimePoint{ms(4)}, us(2500), true, true);
  op.gpu_op_duration = ms(1);
  op.bytes = 1 << 20;
  s2.ops.push_back(op);

  const ExecutionGraph g = build_graph(s2, {}, {}, us(50));
  // CWait holds only the drain of PRIOR work (1.5 ms); the transfer tail
  // belongs to CLaunch (paper: RemoveMemoryTransfer recovers CLaunch).
  const Node* launch = nullptr;
  const Node* wait = nullptr;
  for (const Node& n : g.nodes()) {
    if (n.type == NType::kCLaunch) launch = &n;
    if (n.type == NType::kCWait && n.op_index == 0) wait = &n;
  }
  ASSERT_NE(launch, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->duration, us(1500));
  EXPECT_EQ(launch->duration, us(1500));  // 0.5 ms setup + 1 ms transfer
}

TEST(GraphBuild, DuplicateTransferMarksLaunchNode) {
  Stage2Result s2;
  s2.exec_time = ms(10);
  OpRecord op = make_op(0, Fn::kCudaMemcpy, TimePoint{ms(1)},
                        TimePoint{ms(2)}, us(800), true, true);
  op.gpu_op_duration = us(800);
  s2.ops.push_back(op);
  Stage3Result s3;
  DuplicateTransfer dup;
  dup.op_index = 0;
  dup.first_op_index = 0;
  s3.duplicate_transfers.push_back(dup);

  const ExecutionGraph g = build_graph(s2, s3, {}, us(50));
  bool found = false;
  for (const Node& n : g.nodes()) {
    if (n.type == NType::kCLaunch && n.op_index == 0) {
      EXPECT_EQ(n.problem, ProblemType::kUnnecessaryTransfer);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphBuild, RequiredSyncWithLargeFirstUseIsMisplaced) {
  Stage2Result s2;
  s2.exec_time = ms(10);
  s2.ops.push_back(make_op(0, Fn::kCudaStreamSynchronize, TimePoint{ms(1)},
                           TimePoint{ms(2)}, us(950), true, false));
  Stage3Result s3;
  SyncClassification cls;
  cls.op_index = 0;
  cls.required = true;
  s3.syncs.push_back(cls);
  Stage4Result s4;
  s4.uses.push_back(SyncUse{0, ms(3)});

  const ExecutionGraph g = build_graph(s2, s3, s4, us(50));
  const Node* wait = nullptr;
  for (const Node& n : g.nodes()) {
    if (n.type == NType::kCWait && n.op_index == 0) wait = &n;
  }
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->problem, ProblemType::kMisplacedSync);
  EXPECT_EQ(wait->first_use_time, ms(3));
}

TEST(GraphBuild, RequiredSyncWithImmediateUseIsHealthy) {
  Stage2Result s2;
  s2.exec_time = ms(10);
  s2.ops.push_back(make_op(0, Fn::kCudaStreamSynchronize, TimePoint{ms(1)},
                           TimePoint{ms(2)}, us(950), true, false));
  Stage3Result s3;
  SyncClassification cls;
  cls.op_index = 0;
  cls.required = true;
  s3.syncs.push_back(cls);
  Stage4Result s4;
  s4.uses.push_back(SyncUse{0, us(10)});  // below the 50 us threshold

  const ExecutionGraph g = build_graph(s2, s3, s4, us(50));
  for (const Node& n : g.nodes()) {
    if (n.type == NType::kCWait && n.op_index == 0) {
      EXPECT_EQ(n.problem, ProblemType::kNone);
    }
  }
}

TEST(GraphBuild, TotalDurationEqualsExecTime) {
  Stage2Result s2;
  s2.exec_time = ms(30);
  s2.ops.push_back(make_op(0, Fn::kCudaMemcpy, TimePoint{ms(2)},
                           TimePoint{ms(4)}, ms(1), true, true));
  s2.ops.push_back(make_op(1, Fn::kCudaDeviceSynchronize, TimePoint{ms(10)},
                           TimePoint{ms(15)}, ms(5) - us(3), true, false));
  const ExecutionGraph g = build_graph(s2, {}, {}, us(50));
  EXPECT_EQ(g.total_duration(), ms(30));
  EXPECT_EQ(g.exec_time(), ms(30));
}

TEST(GraphQueries, NextSyncAfter) {
  std::vector<Node> nodes(5);
  nodes[0].type = NType::kCWork;
  nodes[1].type = NType::kCWait;
  nodes[2].type = NType::kCLaunch;
  nodes[3].type = NType::kCWork;
  nodes[4].type = NType::kCWait;
  ExecutionGraph g(std::move(nodes), ms(1));
  EXPECT_EQ(g.next_sync_after(0).value(), 1u);
  EXPECT_EQ(g.next_sync_after(1).value(), 4u);
  EXPECT_FALSE(g.next_sync_after(4).has_value());
}

TEST(GraphQueries, WorkBetweenSumsLaunchAndWorkOnly) {
  std::vector<Node> nodes(5);
  nodes[0].type = NType::kCWait;
  nodes[1].type = NType::kCWork;
  nodes[1].duration = ms(2);
  nodes[2].type = NType::kCWait;  // waits do not count as work
  nodes[2].duration = ms(100);
  nodes[3].type = NType::kCLaunch;
  nodes[3].duration = ms(3);
  nodes[4].type = NType::kCWait;
  ExecutionGraph g(std::move(nodes), ms(1));
  EXPECT_EQ(g.work_between(0, 4), ms(5));
  EXPECT_EQ(g.work_between(0, 1), Duration{0});
}

TEST(GraphQueries, ProblematicIndices) {
  std::vector<Node> nodes(3);
  nodes[0].problem = ProblemType::kUnnecessarySync;
  nodes[0].type = NType::kCWait;
  nodes[2].problem = ProblemType::kUnnecessaryTransfer;
  nodes[2].type = NType::kCLaunch;
  ExecutionGraph g(std::move(nodes), ms(1));
  EXPECT_EQ(g.problematic_indices(),
            (std::vector<std::size_t>{0, 2}));
}

TEST(GraphJson, ExportContainsNodes) {
  Stage2Result s2;
  s2.exec_time = ms(5);
  s2.ops.push_back(make_op(0, Fn::kCudaFree, TimePoint{ms(1)},
                           TimePoint{ms(2)}, us(900), true, false));
  const ExecutionGraph g = build_graph(s2, {}, {}, us(50));
  const json::Value v = g.to_json();
  EXPECT_EQ(v.at("exec_time_ns").as_int(), ms(5).count());
  EXPECT_GE(v.at("nodes").size(), 3u);
}

}  // namespace
}  // namespace diog::ffm
