// Tests for the vendor interface's documented blind spots (paper §2.2)
// and the tool-facing subscriber. These gaps are load-bearing: the whole
// point of FFM is that binary instrumentation sees what CUPTI does not.
#include <gtest/gtest.h>

#include "cuptilike/cupti.h"
#include "gpusim/api.h"
#include "gpusim/blaslike.h"
#include "gpusim/host_buffer.h"
#include "gpusim/private_api.h"
#include "gpusim/runtime.h"
#include "support/error.h"

namespace diog::cupti {
namespace {

using gpusim::cudaError_t;
using gpusim::cudaSuccess;
using gpusim::CuptiActivity;
using gpusim::KernelDesc;
using gpusim::Runtime;
using gpusim::RuntimeScope;
using hooks::Fn;
using hooks::MemcpyKind;

class CuptiGapsTest : public ::testing::Test {
 protected:
  CuptiGapsTest() : scope_(rt_) { sub_.attach(rt_); }

  std::size_t sync_activity_count() const {
    std::size_t n = 0;
    for (const auto& a : sub_.activities()) {
      if (a.kind == CuptiActivity::Kind::kSynchronization) ++n;
    }
    return n;
  }

  std::size_t api_record_count(Fn f) const {
    std::size_t n = 0;
    for (const auto& r : sub_.api_records()) {
      if (r.fn == f) ++n;
    }
    return n;
  }

  Runtime rt_;
  RuntimeScope scope_;
  Subscriber sub_;
};

TEST_F(CuptiGapsTest, ExplicitSyncProducesSynchronizationActivity) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(5);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaDeviceSynchronize();
  EXPECT_EQ(sync_activity_count(), 1u);
  EXPECT_EQ(api_record_count(Fn::kCudaDeviceSynchronize), 1u);
}

TEST_F(CuptiGapsTest, ImplicitSyncInMemcpyProducesNoSyncRecord) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)gpusim::cudaLaunchKernel(k);
  void* dev = nullptr;
  (void)gpusim::cudaMalloc(&dev, 64);
  char host[64];
  // This blocks for 10 ms behind the kernel...
  (void)gpusim::cudaMemcpy(dev, host, 64, MemcpyKind::kHostToDevice);
  // ...but CUPTI reports a memcpy activity and NO synchronization record.
  EXPECT_EQ(sync_activity_count(), 0u);
  bool saw_memcpy_activity = false;
  for (const auto& a : sub_.activities()) {
    if (a.kind == CuptiActivity::Kind::kMemcpy) saw_memcpy_activity = true;
  }
  EXPECT_TRUE(saw_memcpy_activity);
  (void)gpusim::cudaFree(dev);
}

TEST_F(CuptiGapsTest, ImplicitSyncInFreeProducesNoSyncRecord) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)gpusim::cudaLaunchKernel(k);
  void* dev = nullptr;
  (void)gpusim::cudaMalloc(&dev, 64);
  (void)gpusim::cudaFree(dev);  // blocks 10 ms
  EXPECT_EQ(sync_activity_count(), 0u);
  // The call itself IS visible as an API record (with its duration)...
  EXPECT_EQ(api_record_count(Fn::kCudaFree), 1u);
  // ...which is exactly why consumption-based tools rank cudaFree high
  // without knowing the time is a hidden synchronization.
}

TEST_F(CuptiGapsTest, ConditionalSyncInAsyncMemcpyUnreported) {
  void* dev = nullptr;
  (void)gpusim::cudaMalloc(&dev, 1 << 16);
  gpusim::HostBuffer<char> pageable(1 << 16);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaMemcpyAsync(pageable.data(), dev, 1 << 16,
                                MemcpyKind::kDeviceToHost);  // blocks!
  EXPECT_EQ(sync_activity_count(), 0u);
  (void)gpusim::cudaFree(dev);
}

TEST_F(CuptiGapsTest, ConditionalSyncInManagedMemsetUnreported) {
  void* managed = nullptr;
  (void)gpusim::cudaMallocManaged(&managed, 4096);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(10);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaMemset(managed, 0, 4096);  // blocks!
  EXPECT_EQ(sync_activity_count(), 0u);
  (void)gpusim::cudaFree(managed);
}

TEST_F(CuptiGapsTest, PrivateApiEntirelyInvisible) {
  void* dev = gpusim::priv::cuPrivMemAlloc(256);
  char host[256];
  gpusim::priv::cuPrivMemcpyHtoD(dev, host, 256);
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(2);
  gpusim::priv::cuPrivLaunchKernel(k);
  gpusim::priv::cuPrivSync();
  gpusim::priv::cuPrivMemFree(dev);
  EXPECT_TRUE(sub_.api_records().empty());
  EXPECT_TRUE(sub_.activities().empty());
}

TEST_F(CuptiGapsTest, VendorLibraryCallsOmitted) {
  // "CUPTI might omit calls to the public API if they are called from
  // Nvidia-created libraries."
  blaslike::Handle h;
  blaslike::cholesky_solve_batched(h, nullptr, nullptr, 2, 4);
  blaslike::sync(h);
  EXPECT_TRUE(sub_.api_records().empty());
  EXPECT_TRUE(sub_.activities().empty());
}

TEST_F(CuptiGapsTest, KernelActivityCarriesNameAndDuration) {
  KernelDesc k;
  k.name = "solver_kernel";
  k.duration = diog::ms(3);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaDeviceSynchronize();
  bool found = false;
  for (const auto& a : sub_.activities()) {
    if (a.kind == CuptiActivity::Kind::kKernel) {
      EXPECT_EQ(a.name, "solver_kernel");
      EXPECT_EQ(a.end - a.start, diog::ms(3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CuptiGapsTest, ApiRecordsCarryCallDurations) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(8);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaDeviceSynchronize();
  ASSERT_EQ(api_record_count(Fn::kCudaDeviceSynchronize), 1u);
  for (const auto& r : sub_.api_records()) {
    if (r.fn == Fn::kCudaDeviceSynchronize) {
      EXPECT_GE(r.duration(), diog::ms(7));
    }
  }
}

TEST_F(CuptiGapsTest, SummarizeAggregatesAndSorts) {
  KernelDesc k;
  k.name = "k";
  k.duration = diog::ms(5);
  (void)gpusim::cudaLaunchKernel(k);
  (void)gpusim::cudaDeviceSynchronize();
  void* dev = nullptr;
  (void)gpusim::cudaMalloc(&dev, 16);
  (void)gpusim::cudaFree(dev);

  const auto summary = summarize_api_time(sub_.api_records());
  ASSERT_GE(summary.size(), 3u);
  // Sorted descending by total time; deviceSynchronize dominated.
  EXPECT_EQ(summary[0].api_name, "cudaDeviceSynchronize");
  for (std::size_t i = 1; i < summary.size(); ++i) {
    EXPECT_GE(summary[i - 1].total_time, summary[i].total_time);
  }
}

TEST_F(CuptiGapsTest, RecordCostChargesApplication) {
  sub_.detach();
  Subscriber::Options opts;
  opts.record_cost = us(50);
  Subscriber costly(opts);
  costly.attach(rt_);
  const Duration before = rt_.clock().now();
  (void)gpusim::cudaGetDevice(nullptr);  // error path still records exit
  int dev = 0;
  (void)gpusim::cudaGetDevice(&dev);
  EXPECT_GE(rt_.clock().now() - before, us(100));
}

TEST(CuptiOverflow, StopsCollectingAndFlags) {
  Runtime rt;
  Subscriber::Options opts;
  opts.max_records = 5;
  Subscriber sub(opts);
  sub.attach(rt);
  {
    RuntimeScope scope(rt);
    for (int i = 0; i < 20; ++i) {
      int dev = 0;
      (void)gpusim::cudaGetDevice(&dev);
    }
  }
  EXPECT_TRUE(sub.overflowed());
  EXPECT_EQ(sub.records_at_overflow(), 6u);
  EXPECT_LE(sub.total_records(), 6u);  // nothing collected past overflow
}

TEST(CuptiOverflow, ClearResets) {
  Runtime rt;
  Subscriber::Options opts;
  opts.max_records = 1;
  Subscriber sub(opts);
  sub.attach(rt);
  {
    RuntimeScope scope(rt);
    int dev = 0;
    (void)gpusim::cudaGetDevice(&dev);
    (void)gpusim::cudaGetDevice(&dev);
  }
  EXPECT_TRUE(sub.overflowed());
  sub.clear();
  EXPECT_FALSE(sub.overflowed());
  EXPECT_EQ(sub.total_records(), 0u);
}

TEST(CuptiSubscriber, OneSubscriberPerRuntime) {
  Runtime rt;
  Subscriber a, b;
  a.attach(rt);
  EXPECT_THROW(b.attach(rt), diog::Error);
  a.detach();
  EXPECT_NO_THROW(b.attach(rt));
}

}  // namespace
}  // namespace diog::cupti
