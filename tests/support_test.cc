#include <gtest/gtest.h>

#include <set>

#include "support/clock.h"
#include "support/demangle.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/strings.h"

namespace diog {
namespace {

// --- VirtualClock -----------------------------------------------------------

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_EQ(c.now().count(), 0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.advance(ms(5));
  c.advance(us(250));
  EXPECT_EQ(c.now(), ms(5) + us(250));
}

TEST(VirtualClock, AdvanceToMovesForward) {
  VirtualClock c;
  c.advance_to(TimePoint{ms(10)});
  EXPECT_EQ(c.now(), ms(10));
}

TEST(VirtualClock, AdvanceToPastIsNoOp) {
  VirtualClock c;
  c.advance(ms(10));
  c.advance_to(TimePoint{ms(3)});
  EXPECT_EQ(c.now(), ms(10));
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  VirtualClock c;
  EXPECT_THROW(c.advance(Duration{-1}), Error);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock c;
  c.advance(secs(1.0));
  c.reset();
  EXPECT_EQ(c.now().count(), 0);
}

TEST(VirtualClock, SignalSafeNowTracksLatestAdvance) {
  VirtualClock c;
  c.advance(ms(7));
  EXPECT_EQ(VirtualClock::signal_safe_now(), ms(7));
}

TEST(VirtualClock, SaturatesInsteadOfOverflowing) {
  VirtualClock c;
  c.advance(kInfiniteDuration);
  c.advance(kInfiniteDuration);
  c.advance(kInfiniteDuration);
  EXPECT_EQ(c.now(), kNeverTime);
}

TEST(VirtualClock, DurationHelpers) {
  EXPECT_EQ(ns(1).count(), 1);
  EXPECT_EQ(us(1).count(), 1000);
  EXPECT_EQ(ms(1).count(), 1000000);
  EXPECT_EQ(secs(1.5).count(), 1500000000);
  EXPECT_DOUBLE_EQ(to_seconds(ms(1500)), 1.5);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), Error);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, NextInSingletonRange) {
  Rng r(3);
  EXPECT_EQ(r.next_in(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, SplitYieldsIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  Rng a2(42);
  Rng b2 = a2.split();
  // Split streams replay deterministically...
  for (int i = 0; i < 20; ++i) EXPECT_EQ(b.next_u64(), b2.next_u64());
  // ...and differ from the parent.
  Rng parent(42);
  (void)parent.next_u64();  // align position
  EXPECT_NE(b.next_u64(), parent.next_u64());
}

TEST(Rng, RoughlyUniform) {
  Rng r(1234);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[r.next_below(10)];
  for (const int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% of expectation
  }
}

// --- strings -------------------------------------------------------------------

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(secs(421.716)), "421.716s");
  EXPECT_EQ(format_seconds(ms(340)), "0.340s");
  EXPECT_EQ(format_seconds(Duration{0}), "0.000s");
  EXPECT_EQ(format_seconds(secs(1.23456), 2), "1.23s");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.2252), "22.52%");
  EXPECT_EQ(format_percent(0.0), "0.00%");
  EXPECT_EQ(format_percent(1.0), "100.00%");
  EXPECT_EQ(format_percent(0.1084, 1), "10.8%");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(5ull * 1024 * 1024), "5.0 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.0 GiB");
}

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptySegments) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("cudaMemcpy", "cuda"));
  EXPECT_FALSE(starts_with("cu", "cuda"));
  EXPECT_TRUE(ends_with("als.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("p", ".cpp"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // no truncation
}

// --- demangle / template folding -------------------------------------------------

TEST(Demangle, PlainNameUnchanged) {
  EXPECT_EQ(fold_template_name("cudaFree"), "cudaFree");
  EXPECT_EQ(fold_template_name("hypre_BoomerAMGRelax"),
            "hypre_BoomerAMGRelax");
}

TEST(Demangle, SimpleTemplateFolded) {
  EXPECT_EQ(fold_template_name("foo<int>"), "foo<...>");
}

TEST(Demangle, NestedTemplatesFoldToOneEllipsis) {
  EXPECT_EQ(fold_template_name(
                "thrust::detail::contiguous_storage<float, "
                "thrust::device_allocator<float>>::deallocate"),
            "thrust::detail::contiguous_storage<...>::deallocate");
}

TEST(Demangle, MultipleTemplateListsEachFold) {
  EXPECT_EQ(fold_template_name("a<int>::b<float>::c"), "a<...>::b<...>::c");
}

TEST(Demangle, OperatorLessSurvives) {
  EXPECT_EQ(fold_template_name("Foo::operator<"), "Foo::operator<");
}

TEST(Demangle, OperatorShiftSurvives) {
  EXPECT_EQ(fold_template_name("Bar::operator<<"), "Bar::operator<<");
}

TEST(Demangle, OperatorSpaceshipSurvives) {
  EXPECT_EQ(fold_template_name("Baz::operator<=>"), "Baz::operator<=>");
}

TEST(Demangle, TemplatedOperatorLess) {
  // operator< of a templated class: the class args fold, the operator
  // survives.
  EXPECT_EQ(fold_template_name("Box<int>::operator<"),
            "Box<...>::operator<");
}

TEST(Demangle, IdentifierEndingInOperatorIsNotOperator) {
  // "my_operator<int>" is a template named my_operator, not operator<.
  EXPECT_EQ(fold_template_name("my_operator<int>"), "my_operator<...>");
}

TEST(Demangle, UnbalancedBracketsLeftAlone) {
  EXPECT_EQ(fold_template_name("broken<int"), "broken<int");
}

TEST(Demangle, StrayCloseEmittedVerbatim) {
  EXPECT_EQ(fold_template_name("operator>"), "operator>");
}

TEST(Demangle, StripParameterList) {
  EXPECT_EQ(strip_parameter_list("foo(int, float)"), "foo");
  EXPECT_EQ(strip_parameter_list("foo"), "foo");
  EXPECT_EQ(strip_parameter_list("ns::bar(std::vector<int> const&)"),
            "ns::bar");
}

TEST(Demangle, StripParameterListKeepsOperatorCall) {
  EXPECT_EQ(strip_parameter_list("Functor::operator()"),
            "Functor::operator()");
}

TEST(Demangle, BaseFunctionNameCombines) {
  EXPECT_EQ(base_function_name("solve<double>(Grid<double>&)"),
            "solve<...>");
}

TEST(Demangle, PaperExampleCuspMultiply) {
  EXPECT_EQ(
      fold_template_name("void cusp::system::detail::generic::multiply<"
                         "float, cusp::csr_format, cusp::array1d_format>"),
      "void cusp::system::detail::generic::multiply<...>");
}

// --- error ------------------------------------------------------------------------

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    DIOG_CHECK(false, "something went wrong");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("something went wrong"), std::string::npos);
    EXPECT_NE(what.find("support_test.cc"), std::string::npos);
  }
}

TEST(Error, CheckMacroPassesOnTrue) {
  EXPECT_NO_THROW(DIOG_CHECK(1 + 1 == 2, "math broke"));
}

}  // namespace
}  // namespace diog
