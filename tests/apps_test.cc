// Tests of the four evaluation applications: determinism (the multi-run
// model's precondition), presence of each documented pathology, and the
// fixed variants actually being faster.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"

namespace diog::apps {
namespace {

using ffm::run_stage1;
using ffm::run_stage2;
using ffm::run_stage3;
using ffm::run_uninstrumented;
using ffm::Stage1Result;
using ffm::ToolConfig;
using hooks::Fn;

// Small configs keep the whole file fast.
CumfAlsConfig small_cumf() {
  CumfAlsConfig c;
  c.iterations = 4;
  return c;
}
CuibmConfig small_cuibm() {
  CuibmConfig c;
  c.timesteps = 25;
  return c;
}
AmgConfig small_amg() {
  AmgConfig c;
  c.solve_iterations = 10;
  return c;
}
RodiniaGaussianConfig small_rodinia() {
  RodiniaGaussianConfig c;
  c.matrix_dim = 16;
  return c;
}

// --- Determinism (multi-run precondition, paper §5.3) ---------------------------

TEST(AppsDeterminism, CumfAls) {
  const Workload w = make_cumf_als(small_cumf());
  EXPECT_EQ(run_uninstrumented(w), run_uninstrumented(w));
}

TEST(AppsDeterminism, Cuibm) {
  const Workload w = make_cuibm(small_cuibm());
  EXPECT_EQ(run_uninstrumented(w), run_uninstrumented(w));
}

TEST(AppsDeterminism, Amg) {
  const Workload w = make_amg(small_amg());
  EXPECT_EQ(run_uninstrumented(w), run_uninstrumented(w));
}

TEST(AppsDeterminism, RodiniaGaussian) {
  const Workload w = make_rodinia_gaussian(small_rodinia());
  EXPECT_EQ(run_uninstrumented(w), run_uninstrumented(w));
}

TEST(AppsDeterminism, TraceShapeStableAcrossRuns) {
  const Workload w = make_cumf_als(small_cumf());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const auto t1 = run_stage2(w, cfg, s1);
  const auto t2 = run_stage2(w, cfg, s1);
  ASSERT_EQ(t1.ops.size(), t2.ops.size());
  for (std::size_t i = 0; i < t1.ops.size(); ++i) {
    EXPECT_EQ(t1.ops[i].api, t2.ops[i].api);
    EXPECT_EQ(t1.ops[i].stack, t2.ops[i].stack);
  }
}

// --- Fixed variants are genuinely faster -------------------------------------------

TEST(AppsFixes, CumfAlsFixedIsFaster) {
  const Duration path = run_uninstrumented(make_cumf_als(small_cumf()));
  const Duration fixed =
      run_uninstrumented(make_cumf_als(small_cumf(), true));
  EXPECT_LT(fixed, path);
}

TEST(AppsFixes, CuibmFixedIsFaster) {
  const Duration path = run_uninstrumented(make_cuibm(small_cuibm()));
  const Duration fixed = run_uninstrumented(make_cuibm(small_cuibm(), true));
  EXPECT_LT(fixed, path);
}

TEST(AppsFixes, AmgFixedIsFaster) {
  const Duration path = run_uninstrumented(make_amg(small_amg()));
  const Duration fixed = run_uninstrumented(make_amg(small_amg(), true));
  EXPECT_LT(fixed, path);
}

TEST(AppsFixes, RodiniaFixedIsFaster) {
  const Duration path =
      run_uninstrumented(make_rodinia_gaussian(small_rodinia()));
  const Duration fixed =
      run_uninstrumented(make_rodinia_gaussian(small_rodinia(), true));
  EXPECT_LT(fixed, path);
}

// --- Pathology presence ---------------------------------------------------------------

TEST(AppsPathology, CumfAlsHasHiddenFreeSyncsAndDuplicates) {
  const Workload w = make_cumf_als(small_cumf());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  bool free_site = false;
  bool priv_site = false;
  for (const auto& s : s1.sync_sites) {
    if (s.api == Fn::kCudaFree) free_site = true;
    if (s.api == Fn::kPrivMemFree) priv_site = true;
  }
  EXPECT_TRUE(free_site);
  EXPECT_TRUE(priv_site);  // the cuBLAS-like workspace teardown

  const auto s3 = run_stage3(w, cfg, s1);
  // Tiles A and B re-uploaded identically from iteration 2 on.
  EXPECT_EQ(s3.duplicate_transfers.size(),
            2u * (small_cumf().iterations - 1));
}

TEST(AppsPathology, CumfAlsFixedHasNoDuplicates) {
  const Workload w = make_cumf_als(small_cumf(), true);
  const ToolConfig cfg;
  const auto s3 = run_stage3(w, cfg, run_stage1(w, cfg));
  EXPECT_TRUE(s3.duplicate_transfers.empty());
}

TEST(AppsPathology, CuibmFreeSyncsCarryThrustTemplateFrames) {
  const Workload w = make_cuibm(small_cuibm());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  bool thrust_frame = false;
  bool pair_frame = false;
  bool cusp_frame = false;
  for (const auto& s : s1.sync_sites) {
    if (s.api != Fn::kCudaFree) continue;
    for (const trace::Frame* f : s.stack.frames()) {
      if (f->folded_function.find("contiguous_storage<...>") !=
          std::string::npos) {
        thrust_frame = true;
      }
      if (f->folded_function.find("thrust::pair<...>") !=
          std::string::npos) {
        pair_frame = true;
      }
      if (f->folded_function.find("cusp::system::detail::generic") !=
          std::string::npos) {
        cusp_frame = true;
      }
    }
  }
  EXPECT_TRUE(thrust_frame);
  EXPECT_TRUE(pair_frame);
  EXPECT_TRUE(cusp_frame);
}

TEST(AppsPathology, CuibmHasConditionalAsyncCopySync) {
  const Workload w = make_cuibm(small_cuibm());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  bool async_copy_sync = false;
  for (const auto& s : s1.sync_sites) {
    if (s.api == Fn::kCudaMemcpyAsync) async_copy_sync = true;
  }
  EXPECT_TRUE(async_copy_sync);
}

TEST(AppsPathology, CuibmFixedEliminatesPerCallFrees) {
  const ToolConfig cfg;
  const Workload path = make_cuibm(small_cuibm());
  const Workload fixed = make_cuibm(small_cuibm(), true);
  const auto count_frees = [&](const Workload& w) {
    const Stage1Result s1 = run_stage1(w, cfg);
    const auto s2 = run_stage2(w, cfg, s1);
    std::size_t n = 0;
    for (const auto& op : s2.ops) {
      if (op.api == Fn::kCudaFree) ++n;
    }
    return n;
  };
  const std::size_t path_frees = count_frees(path);
  const std::size_t fixed_frees = count_frees(fixed);
  EXPECT_GT(path_frees, small_cuibm().timesteps * 3);
  EXPECT_LT(fixed_frees, 10u);  // only teardown remains
}

TEST(AppsPathology, AmgMemsetSynchronizes) {
  const Workload w = make_amg(small_amg());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  bool memset_site = false;
  for (const auto& s : s1.sync_sites) {
    if (s.api == Fn::kCudaMemset) memset_site = true;
  }
  EXPECT_TRUE(memset_site);
}

TEST(AppsPathology, AmgFixedHasNoMemsetSyncs) {
  const Workload w = make_amg(small_amg(), true);
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  for (const auto& s : s1.sync_sites) {
    EXPECT_NE(s.api, Fn::kCudaMemset);
  }
}

TEST(AppsPathology, RodiniaThreadSyncsDominateCalls) {
  const Workload w = make_rodinia_gaussian(small_rodinia());
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  std::uint64_t thread_sync_hits = 0;
  for (const auto& s : s1.sync_sites) {
    if (s.api == Fn::kCudaThreadSynchronize) thread_sync_hits += s.hits;
  }
  // Two syncs per eliminated row.
  EXPECT_EQ(thread_sync_hits, 2u * small_rodinia().matrix_dim);
}

TEST(AppsRegistry, AllAppsListsFourPairs) {
  const auto apps = all_apps();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "cumf_als");
  EXPECT_EQ(apps[1].name, "cuIBM");
  EXPECT_EQ(apps[2].name, "AMG");
  EXPECT_EQ(apps[3].name, "Rodinia");
  for (const auto& app : apps) {
    EXPECT_NE(app.pathological.body, nullptr);
    EXPECT_NE(app.fixed.body, nullptr);
  }
}

}  // namespace
}  // namespace diog::apps
