#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "hashing/content_hash.h"
#include "hashing/dedup_store.h"
#include "support/rng.h"

namespace diog::hash {
namespace {

std::vector<std::byte> make_bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (const int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

// --- fnv1a64 -------------------------------------------------------------------

TEST(Fnv1a, KnownVectors) {
  // Offset basis for empty input.
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ULL);
  // "a" -> published FNV-1a 64 value.
  const auto a = make_bytes({'a'});
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, OrderSensitive) {
  const auto ab = make_bytes({'a', 'b'});
  const auto ba = make_bytes({'b', 'a'});
  EXPECT_NE(fnv1a64(ab), fnv1a64(ba));
}

// --- hash64 ----------------------------------------------------------------------

TEST(Hash64, DeterministicAcrossCalls) {
  Rng rng(5);
  const auto data = random_bytes(rng, 10000);
  EXPECT_EQ(hash64(data), hash64(data));
}

TEST(Hash64, SeedChangesDigest) {
  Rng rng(5);
  const auto data = random_bytes(rng, 100);
  EXPECT_NE(hash64(data, 0), hash64(data, 1));
}

TEST(Hash64, EmptyInputIsStable) {
  EXPECT_EQ(hash64({}), hash64({}));
}

TEST(Hash64, SingleBitFlipChangesDigest) {
  Rng rng(9);
  auto data = random_bytes(rng, 4096);
  const Digest before = hash64(data);
  data[2048] ^= std::byte{1};
  EXPECT_NE(hash64(data), before);
}

TEST(Hash64, LengthExtensionDistinct) {
  const auto a = make_bytes({1, 2, 3});
  const auto b = make_bytes({1, 2, 3, 0});
  EXPECT_NE(hash64(a), hash64(b));
}

// Streaming must agree with one-shot regardless of chunk boundaries.
class Hasher64ChunkTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Hasher64ChunkTest, StreamingMatchesOneShot) {
  Rng rng(77);
  const auto data = random_bytes(rng, 5000);
  const Digest expected = hash64(data);

  Hasher64 h;
  const std::size_t chunk = GetParam();
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t len = std::min(chunk, data.size() - off);
    h.update(std::span<const std::byte>(data.data() + off, len));
  }
  EXPECT_EQ(h.digest(), expected);
  EXPECT_EQ(h.bytes_consumed(), data.size());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Hasher64ChunkTest,
                         ::testing::Values(1, 3, 7, 31, 32, 33, 64, 100, 4096,
                                           5000));

TEST(Hasher64, DigestIsIdempotent) {
  Hasher64 h;
  const auto data = make_bytes({1, 2, 3, 4, 5});
  h.update(data);
  EXPECT_EQ(h.digest(), h.digest());
}

TEST(Hash64, ShortInputsAllDistinct) {
  // Inputs below one 32-byte stripe exercise the tail path.
  std::set<Digest> seen;
  for (int len = 0; len < 32; ++len) {
    std::vector<std::byte> data(static_cast<std::size_t>(len),
                                std::byte{0xAB});
    seen.insert(hash64(data));
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Hash64, CollisionFreeOverRandomCorpus) {
  Rng rng(2024);
  std::set<Digest> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(hash64(random_bytes(rng, 64)));
  }
  EXPECT_EQ(seen.size(), 2000u);
}

// --- DedupStore --------------------------------------------------------------------

TEST(DedupStore, FirstObservationIsNotDuplicate) {
  DedupStore store;
  Rng rng(1);
  const auto data = random_bytes(rng, 256);
  EXPECT_FALSE(store.observe(data, TransferDirection::kHostToDevice, 10)
                   .has_value());
  EXPECT_EQ(store.unique_contents(), 1u);
}

TEST(DedupStore, RepeatIsDuplicateAndPointsAtFirst) {
  DedupStore store;
  Rng rng(1);
  const auto data = random_bytes(rng, 256);
  (void)store.observe(data, TransferDirection::kHostToDevice, 10);
  const auto dup = store.observe(data, TransferDirection::kHostToDevice, 55);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->first_event_id, 10u);
  EXPECT_EQ(dup->bytes, 256u);
  EXPECT_EQ(store.duplicate_count(), 1u);
  EXPECT_EQ(store.duplicate_bytes(), 256u);
}

TEST(DedupStore, DirectionAgnostic) {
  // Content moved H2D then D2H is the same content crossing the bus
  // twice — the second move is a duplicate (paper: "data that has
  // already been transferred between the CPU/GPU").
  DedupStore store;
  Rng rng(2);
  const auto data = random_bytes(rng, 128);
  (void)store.observe(data, TransferDirection::kHostToDevice, 1);
  EXPECT_TRUE(store.observe(data, TransferDirection::kDeviceToHost, 2)
                  .has_value());
}

TEST(DedupStore, DifferentContentNotDuplicate) {
  DedupStore store;
  Rng rng(3);
  (void)store.observe(random_bytes(rng, 64),
                      TransferDirection::kHostToDevice, 1);
  EXPECT_FALSE(store.observe(random_bytes(rng, 64),
                             TransferDirection::kHostToDevice, 2)
                   .has_value());
  EXPECT_EQ(store.unique_contents(), 2u);
}

TEST(DedupStore, SameBytesDifferentLengthNotDuplicate) {
  DedupStore store;
  const std::vector<std::byte> data(100, std::byte{7});
  (void)store.observe(std::span(data.data(), 100),
                      TransferDirection::kHostToDevice, 1);
  EXPECT_FALSE(store.observe(std::span(data.data(), 99),
                             TransferDirection::kHostToDevice, 2)
                   .has_value());
}

TEST(DedupStore, ClearForgets) {
  DedupStore store;
  const auto data = make_bytes({1, 2, 3});
  (void)store.observe(data, TransferDirection::kHostToDevice, 1);
  store.clear();
  EXPECT_EQ(store.unique_contents(), 0u);
  EXPECT_FALSE(
      store.observe(data, TransferDirection::kHostToDevice, 2).has_value());
}

// Property: the store's verdicts must agree with an exact byte-compare
// oracle over a randomized workload of repeated/fresh buffers.
class DedupOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DedupOracleTest, MatchesByteCompareOracle) {
  Rng rng(GetParam());
  DedupStore store(DedupStore::Mode::kVerifyBytes);
  std::vector<std::vector<std::byte>> corpus;

  for (int i = 0; i < 300; ++i) {
    std::vector<std::byte> data;
    if (!corpus.empty() && rng.next_bool(0.4)) {
      data = corpus[rng.next_below(corpus.size())];  // resend old content
    } else {
      data = random_bytes(rng, 1 + rng.next_below(200));
    }

    bool oracle_dup = false;
    for (const auto& prev : corpus) {
      if (prev == data) {
        oracle_dup = true;
        break;
      }
    }
    const bool store_dup =
        store
            .observe(data, TransferDirection::kHostToDevice,
                     static_cast<std::uint64_t>(i))
            .has_value();
    EXPECT_EQ(store_dup, oracle_dup) << "iteration " << i;
    corpus.push_back(std::move(data));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(DedupStore, TransferDirectionNames) {
  EXPECT_STREQ(to_string(TransferDirection::kHostToDevice), "HtoD");
  EXPECT_STREQ(to_string(TransferDirection::kDeviceToHost), "DtoH");
  EXPECT_STREQ(to_string(TransferDirection::kDeviceToDevice), "DtoD");
}

}  // namespace
}  // namespace diog::hash
