// Property-based tests of the simulated device's scheduling semantics
// over randomized operation sequences: per-stream FIFO ordering, cross-
// stream independence, monotonic time, conservation of GPU busy time,
// and the watchdog-free guarantee that every wait terminates.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "gpusim/api.h"
#include "gpusim/runtime.h"
#include "support/rng.h"

namespace gpusim {
namespace {

using diog::Duration;
using diog::Rng;
using diog::TimePoint;

class DevicePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DevicePropertyTest, RandomScheduleInvariants) {
  Rng rng(GetParam());
  Runtime rt;
  RuntimeScope scope(rt);

  std::vector<StreamId> streams{kDefaultStream};
  for (int i = 0; i < 3; ++i) {
    StreamId s;
    (void)cudaStreamCreate(&s);
    streams.push_back(s);
  }

  Duration total_gpu_work{0};
  std::uint64_t ops = 0;
  TimePoint last_now = rt.clock().now();

  const int n = 60 + static_cast<int>(rng.next_below(60));
  for (int i = 0; i < n; ++i) {
    const StreamId s = streams[rng.next_below(streams.size())];
    switch (rng.next_below(4)) {
      case 0: {
        KernelDesc k;
        k.name = "pk";
        k.duration = diog::us(rng.next_in(1, 2000));
        ASSERT_EQ(cudaLaunchKernel(k, s), cudaSuccess);
        total_gpu_work += k.duration;
        ++ops;
        break;
      }
      case 1:
        (void)cudaStreamSynchronize(s);
        EXPECT_TRUE(rt.device().idle(s));
        break;
      case 2:
        (void)cudaDeviceSynchronize();
        EXPECT_TRUE(rt.device().idle());
        break;
      case 3:
        cpu_work(diog::us(rng.next_in(1, 500)));
        break;
    }
    // The virtual clock never goes backwards.
    EXPECT_GE(rt.clock().now(), last_now);
    last_now = rt.clock().now();
  }
  (void)cudaDeviceSynchronize();

  // Conservation: the device executed exactly the submitted work.
  EXPECT_EQ(rt.device().total_gpu_busy(), total_gpu_work);
  EXPECT_EQ(rt.device().ops_executed(), ops);

  // The program cannot finish before all GPU work fits somewhere, and
  // cannot take longer than fully-serialized execution plus CPU time.
  EXPECT_GE(rt.clock().now(), diog::Duration{0});
  EXPECT_GE(rt.clock().now() + diog::us(1),
            rt.device().all_streams_busy_until());

  // Per-stream FIFO: the recorded timeline never overlaps within one
  // stream and never starts an op before it was submitted.
  std::map<StreamId, TimePoint> prev_end;
  for (const GpuOp& op : rt.device().timeline()) {
    EXPECT_LE(op.start, op.end);
    const auto it = prev_end.find(op.stream);
    if (it != prev_end.end()) {
      EXPECT_GE(op.start, it->second) << "stream " << op.stream;
    }
    prev_end[op.stream] = op.end;
  }

  for (std::size_t i = 1; i < streams.size(); ++i) {
    (void)cudaStreamDestroy(streams[i]);
  }
}

TEST_P(DevicePropertyTest, SameSeedSameSchedule) {
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    Runtime rt;
    RuntimeScope scope(rt);
    for (int i = 0; i < 50; ++i) {
      if (rng.next_bool(0.6)) {
        KernelDesc k;
        k.name = "pk";
        k.duration = diog::us(rng.next_in(1, 1000));
        (void)cudaLaunchKernel(k);
      } else {
        (void)cudaDeviceSynchronize();
      }
    }
    (void)cudaDeviceSynchronize();
    return rt.clock().now();
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

TEST_P(DevicePropertyTest, MultiStreamNeverSlowerThanSingleStream) {
  // Spreading the same kernels over several streams can only reduce (or
  // keep) the makespan relative to one stream.
  Rng rng(GetParam() * 31);
  std::vector<Duration> kernels;
  for (int i = 0; i < 40; ++i) {
    kernels.push_back(diog::us(rng.next_in(10, 1500)));
  }

  auto run_with_streams = [&](std::size_t n_streams) {
    Runtime rt;
    RuntimeScope scope(rt);
    std::vector<StreamId> ss{kDefaultStream};
    for (std::size_t i = 1; i < n_streams; ++i) {
      StreamId s;
      (void)cudaStreamCreate(&s);
      ss.push_back(s);
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      KernelDesc k;
      k.name = "pk";
      k.duration = kernels[i];
      (void)cudaLaunchKernel(k, ss[i % ss.size()]);
    }
    (void)cudaDeviceSynchronize();
    return rt.clock().now();
  };

  const TimePoint single = run_with_streams(1);
  const TimePoint quad = run_with_streams(4);
  EXPECT_LE(quad, single);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DevicePropertyTest,
                         ::testing::Values(3, 7, 13, 29, 57, 101, 211));

}  // namespace
}  // namespace gpusim
