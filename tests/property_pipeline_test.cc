// Property-based tests of the whole pipeline over randomized synthetic
// workloads.
//
// A seeded generator emits a random but deterministic CUDA-style program
// (kernels, transfers, frees, syncs, CPU work, data reads) and records
// ground-truth facts while generating. The five-stage pipeline must then
// satisfy structural invariants against that oracle for every seed:
// stage alignment, duplicate-transfer correctness, benefit bounds,
// serialization round trips, and run-to-run determinism.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/diogenes.h"
#include "core/report.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/rng.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::HostBuffer;
using gpusim::KernelDesc;
using hooks::MemcpyKind;

// Ground truth accumulated while generating the program.
struct Oracle {
  std::size_t duplicate_uploads = 0;
  std::size_t sync_calls = 0;       // calls that perform a sync op
  std::size_t transfer_calls = 0;   // memcpy-style calls
  std::size_t reads_after_copy = 0;
};

struct RandomProgram {
  std::uint64_t seed;
  std::shared_ptr<Oracle> oracle = std::make_shared<Oracle>();
  // Buffers shared across replays so content is identical run-to-run.
  std::shared_ptr<HostBuffer<float>> stable =
      std::make_shared<HostBuffer<float>>(8 * 1024);
  std::shared_ptr<HostBuffer<float>> fresh =
      std::make_shared<HostBuffer<float>>(8 * 1024);
  std::shared_ptr<HostBuffer<float>> readback =
      std::make_shared<HostBuffer<float>>(8 * 1024);

  RandomProgram() {
    // Distinctive stable content, so no buffer accidentally matches
    // another by both being zero-filled.
    (*stable)[0] = 1234.5f;
    (*stable)[777] = static_cast<float>(seed) + 0.25f;
  }

  void operator()() const {
    DIOG_APP_FRAME("random_main", "random.cu", 1);
    Rng rng(seed);
    Oracle local{};  // recomputed identically each run

    void* d_a = nullptr;
    void* d_b = nullptr;
    (void)gpusim::cudaMalloc(&d_a, stable->size_bytes());
    (void)gpusim::cudaMalloc(&d_b, readback->size_bytes());

    // Content-identity oracle: the dedup store flags any transfer whose
    // exact bytes crossed the bus before, regardless of direction or
    // buffer. Track transferred contents symbolically.
    std::set<std::string> seen_contents;
    int device_version = -1;  // which kernel last wrote d_b

    const int steps = 10 + static_cast<int>(rng.next_below(15));
    for (int i = 0; i < steps; ++i) {
      DIOG_APP_FRAME("random_step", "random.cu", 20);
      switch (rng.next_below(6)) {
        case 0: {  // kernel launch
          KernelDesc k;
          k.name = "rand_kernel";
          k.duration = us(rng.next_in(50, 3000));
          float* out = static_cast<float*>(d_b);
          const float v = static_cast<float>(i) + 3.75f;
          k.body = [out, v] { out[0] = v; };
          (void)gpusim::cudaLaunchKernel(k);
          device_version = i;
          break;
        }
        case 1: {  // upload of never-changing content (duplicate source)
          DIOG_APP_FRAME("upload_stable", "random.cu", 31);
          (void)gpusim::cudaMemcpy(d_a, stable->data(),
                                   stable->size_bytes(),
                                   MemcpyKind::kHostToDevice);
          ++local.transfer_calls;
          ++local.sync_calls;  // blocking copy
          if (!seen_contents.insert("stable").second) {
            ++local.duplicate_uploads;
          }
          break;
        }
        case 2: {  // upload of changing content (never a duplicate)
          DIOG_APP_FRAME("upload_fresh", "random.cu", 41);
          (*fresh)[0] = static_cast<float>(i) + 0.5f;
          (void)gpusim::cudaMemcpy(d_a, fresh->data(),
                                   fresh->size_bytes(),
                                   MemcpyKind::kHostToDevice);
          ++local.transfer_calls;
          ++local.sync_calls;
          seen_contents.insert("fresh_" + std::to_string(i));
          break;
        }
        case 3: {  // explicit sync
          (void)gpusim::cudaDeviceSynchronize();
          ++local.sync_calls;
          break;
        }
        case 4: {  // readback + consume
          DIOG_APP_FRAME("readback", "random.cu", 55);
          (void)gpusim::cudaMemcpy(readback->data(), d_b,
                                   readback->size_bytes(),
                                   MemcpyKind::kDeviceToHost);
          ++local.transfer_calls;
          ++local.sync_calls;
          if (!seen_contents
                   .insert("device_v" + std::to_string(device_version))
                   .second) {
            ++local.duplicate_uploads;
          }
          volatile float v = (*readback)[0];
          (void)v;
          ++local.reads_after_copy;
          break;
        }
        case 5: {  // CPU phase
          gpusim::cpu_work(us(rng.next_in(20, 2000)));
          break;
        }
      }
    }
    (void)gpusim::cudaFree(d_a);  // + 2 implicit syncs
    (void)gpusim::cudaFree(d_b);
    local.sync_calls += 2;
    *oracle = local;
  }
};

Workload make_random(std::uint64_t seed) {
  RandomProgram prog;
  prog.seed = seed;
  Workload w;
  w.name = "random_" + std::to_string(seed);
  w.device = gpusim::DeviceConfig{};
  w.body = prog;
  return w;
}

class PipelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PipelinePropertyTest, InvariantsAgainstOracle) {
  const Workload w = make_random(GetParam());
  const auto* prog = w.body.target<RandomProgram>();
  ASSERT_NE(prog, nullptr);

  Diogenes tool(w);
  const AnalysisResult r = tool.analyze();
  const Oracle& oracle = *prog->oracle;

  // --- duplicate detection matches construction ---------------------------
  EXPECT_EQ(r.s3.duplicate_transfers.size(), oracle.duplicate_uploads);
  for (const DuplicateTransfer& d : r.s3.duplicate_transfers) {
    ASSERT_LT(d.op_index, r.s2.ops.size());
    ASSERT_LT(d.first_op_index, d.op_index);  // first strictly earlier
    const OpRecord& dup = r.s2.ops[d.op_index];
    const OpRecord& first = r.s2.ops[d.first_op_index];
    EXPECT_EQ(dup.bytes, first.bytes);
    // Duplicates come from re-sending stable content or re-reading an
    // unchanged device buffer — never from the fresh uploads.
    EXPECT_NE(dup.stack.leaf()->function, "upload_fresh");
  }

  // --- trace counts match the oracle --------------------------------------
  std::size_t traced_syncs = 0;
  std::size_t traced_transfers = 0;
  for (const OpRecord& op : r.s2.ops) {
    if (op.performed_sync) ++traced_syncs;
    if (op.performed_transfer) ++traced_transfers;
    EXPECT_LE(op.t_enter, op.t_exit);
    EXPECT_LE(op.sync_wait, op.t_exit - op.t_enter);
  }
  EXPECT_EQ(traced_syncs, oracle.sync_calls);
  EXPECT_EQ(traced_transfers, oracle.transfer_calls);

  // --- stage alignment ------------------------------------------------------
  for (const SyncClassification& c : r.s3.syncs) {
    ASSERT_LT(c.op_index, r.s2.ops.size());
    EXPECT_TRUE(r.s2.ops[c.op_index].performed_sync);
  }
  for (const SyncUse& u : r.s4.uses) {
    ASSERT_LT(u.op_index, r.s2.ops.size());
    EXPECT_GE(u.first_use_time.count(), 0);
  }

  // --- benefit bounds ---------------------------------------------------------
  EXPECT_GE(r.benefit.total.count(), 0);
  EXPECT_LE(r.benefit.total, r.s2.exec_time);
  EXPECT_EQ(r.benefit.total,
            r.benefit.sync_benefit + r.benefit.transfer_benefit);

  // --- graph totals reproduce the traced run ----------------------------------
  EXPECT_EQ(r.graph.total_duration(), r.s2.exec_time);

  // --- serialization round trips -----------------------------------------------
  EXPECT_EQ(Stage2Result::from_json(r.s2.to_json()).to_json().dump(),
            r.s2.to_json().dump());
  EXPECT_EQ(Stage3Result::from_json(r.s3.to_json()).to_json().dump(),
            r.s3.to_json().dump());
  EXPECT_EQ(Stage4Result::from_json(r.s4.to_json()).to_json().dump(),
            r.s4.to_json().dump());

  // --- JSON export is well-formed ------------------------------------------------
  EXPECT_NO_THROW((void)json::parse(export_json(r).dump_pretty()));
}

TEST_P(PipelinePropertyTest, AnalysisIsDeterministic) {
  const Workload w = make_random(GetParam() ^ 0x9999);
  Diogenes t1(w), t2(w);
  const AnalysisResult a = t1.analyze();
  const AnalysisResult b = t2.analyze();
  EXPECT_EQ(a.benefit.total, b.benefit.total);
  EXPECT_EQ(a.s2.exec_time, b.s2.exec_time);
  EXPECT_EQ(a.s3.duplicate_transfers.size(),
            b.s3.duplicate_transfers.size());
  EXPECT_EQ(export_json(a).dump(), export_json(b).dump());
}

TEST_P(PipelinePropertyTest, BaselineStageMatchesUninstrumentedClosely) {
  const Workload w = make_random(GetParam() + 7);
  const Duration native = run_uninstrumented(w);
  Diogenes tool(w);
  const AnalysisResult r = tool.analyze();
  // Stage 1 is designed low-overhead: within 5% of native.
  const double ratio = static_cast<double>(r.s1.exec_time.count()) /
                       static_cast<double>(native.count());
  EXPECT_GE(ratio, 1.0);
  EXPECT_LT(ratio, 1.05);
  // Stage 3 is the heavy one.
  EXPECT_GT(r.s3.exec_time, r.s1.exec_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace diog::ffm
