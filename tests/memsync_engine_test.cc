// Direct tests of the stage-3/4 memory-sync engine: guard windows,
// range lifecycle, access attribution, and hashing costs.
#include <gtest/gtest.h>

#include <memory>

#include "core/memsync_engine.h"
#include "support/error.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "memtrace/page_tracer.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::HostBuffer;
using gpusim::KernelDesc;
using hooks::MemcpyKind;

Stage1Result minimal_s1() {
  Stage1Result s1;
  s1.wait_fn = hooks::Fn::kInternalWaitForStream;
  // No extra sync sites: traced_fns() still covers transfers + explicit
  // syncs, enough for these tests.
  return s1;
}

TEST(MemSyncEngine, RegistersD2HDestinationsAndArmsBetweenCalls) {
  gpusim::Runtime rt;
  const ToolConfig cfg;
  MemSyncEngine engine(rt, cfg, minimal_s1(), /*hash_transfers=*/false);
  auto out = std::make_shared<HostBuffer<float>>(1024);
  {
    gpusim::RuntimeScope scope(rt);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    // Between driver calls the destination range is armed.
    EXPECT_TRUE(memtrace::PageTracer::instance().armed());
    EXPECT_TRUE(memtrace::PageTracer::instance().covers(out->data()));
    (void)gpusim::cudaFree(dev);
    engine.finish();
  }
  EXPECT_FALSE(memtrace::PageTracer::instance().armed());
  EXPECT_EQ(memtrace::PageTracer::instance().range_count(), 0u);
}

TEST(MemSyncEngine, AccessAttributesToMostRecentCompletedSync) {
  gpusim::Runtime rt;
  const ToolConfig cfg;
  MemSyncEngine engine(rt, cfg, minimal_s1(), false);
  auto out = std::make_shared<HostBuffer<float>>(1024);
  {
    gpusim::RuntimeScope scope(rt);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);  // op 0, syncs
    (void)gpusim::cudaDeviceSynchronize();                // op 1, syncs
    volatile float v = (*out)[0];  // attributed to the LATEST sync (op 1)
    (void)v;
    (void)gpusim::cudaFree(dev);
    engine.finish();
  }
  bool op1_required = false;
  for (const auto& obs : engine.syncs()) {
    if (obs.op_index == 1) {
      op1_required = obs.required;
    }
    if (obs.op_index == 0) {
      EXPECT_FALSE(obs.required);
    }
  }
  EXPECT_TRUE(op1_required);
}

TEST(MemSyncEngine, FreeingTrackedBufferForgetsRange) {
  gpusim::Runtime rt;
  const ToolConfig cfg;
  MemSyncEngine engine(rt, cfg, minimal_s1(), false);
  {
    gpusim::RuntimeScope scope(rt);
    void* dev = nullptr;
    void* pinned = nullptr;
    (void)gpusim::cudaMalloc(&dev, 4096);
    (void)gpusim::cudaMallocHost(&pinned, 4096);
    (void)gpusim::cudaMemcpy(pinned, dev, 4096, MemcpyKind::kDeviceToHost);
    EXPECT_TRUE(memtrace::PageTracer::instance().covers(pinned));
    (void)gpusim::cudaFreeHost(pinned);  // must unregister before freeing
    EXPECT_FALSE(memtrace::PageTracer::instance().covers(pinned));
    (void)gpusim::cudaFree(dev);
    engine.finish();
  }
}

TEST(MemSyncEngine, HashingChargesVirtualTime) {
  auto run_with = [&](bool hashing) {
    gpusim::Runtime rt;
    const ToolConfig cfg;
    MemSyncEngine engine(rt, cfg, minimal_s1(), hashing);
    auto buf = std::make_shared<HostBuffer<float>>(1 << 20);  // 4 MiB
    Duration out;
    {
      gpusim::RuntimeScope scope(rt);
      void* dev = nullptr;
      (void)gpusim::cudaMalloc(&dev, buf->size_bytes());
      (void)gpusim::cudaMemcpy(dev, buf->data(), buf->size_bytes(),
                               MemcpyKind::kHostToDevice);
      (void)gpusim::cudaFree(dev);
      engine.finish();
      out = rt.clock().now();
    }
    return out;
  };
  const Duration without = run_with(false);
  const Duration with = run_with(true);
  // 4 MiB at the configured 1.5 GB/s hash bandwidth ~= 2.8 ms extra.
  EXPECT_GT(with - without, ms(2));
}

TEST(MemSyncEngine, ReuseRequiresFreshEngine) {
  gpusim::Runtime rt;
  const ToolConfig cfg;
  MemSyncEngine engine(rt, cfg, minimal_s1(), false);
  {
    gpusim::RuntimeScope scope(rt);
    engine.finish();
  }
  EXPECT_THROW(engine.finish(), Error);
}

TEST(MemSyncEngine, DestructorCleansUpWithoutFinish) {
  auto out = std::make_shared<HostBuffer<float>>(256);
  {
    gpusim::Runtime rt;
    const ToolConfig cfg;
    MemSyncEngine engine(rt, cfg, minimal_s1(), false);
    gpusim::RuntimeScope scope(rt);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    // engine destroyed armed, without finish(): must disarm + clear.
  }
  EXPECT_FALSE(memtrace::PageTracer::instance().armed());
  EXPECT_EQ(memtrace::PageTracer::instance().range_count(), 0u);
  (void)(*out)[0];  // and the memory is touchable again
}

}  // namespace
}  // namespace diog::ffm
