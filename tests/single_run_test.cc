#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/single_run.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "gpusim/api.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::KernelDesc;

// N identical loop iterations, each with one sync site.
Workload repetitive_workload(int iterations) {
  Workload w;
  w.name = "repetitive";
  w.device = gpusim::DeviceConfig{};
  w.body = [iterations] {
    DIOG_APP_FRAME("main", "rep.cu", 1);
    for (int i = 0; i < iterations; ++i) {
      KernelDesc k;
      k.name = "k";
      k.duration = us(500);
      (void)gpusim::cudaLaunchKernel(k);
      DIOG_APP_FRAME("loop_sync", "rep.cu", 9);
      (void)gpusim::cudaDeviceSynchronize();
    }
  };
  return w;
}

// One-shot expensive syncs at startup, then a repetitive tail.
Workload startup_heavy_workload() {
  Workload w;
  w.name = "startup_heavy";
  w.device = gpusim::DeviceConfig{};
  w.body = [] {
    DIOG_APP_FRAME("main", "init.cu", 1);
    {
      // The initialization phase synchronizes twice, expensively, at
      // two distinct sites — and never again.
      DIOG_APP_FRAME("init", "init.cu", 10);
      KernelDesc big;
      big.name = "init_kernel";
      big.duration = ms(40);
      (void)gpusim::cudaLaunchKernel(big);
      {
        DIOG_APP_FRAME("init", "init.cu", 14);
        (void)gpusim::cudaDeviceSynchronize();
      }
      (void)gpusim::cudaLaunchKernel(big);
      {
        DIOG_APP_FRAME("init", "init.cu", 18);
        (void)gpusim::cudaDeviceSynchronize();
      }
    }
    for (int i = 0; i < 20; ++i) {
      KernelDesc k;
      k.name = "k";
      k.duration = us(200);
      (void)gpusim::cudaLaunchKernel(k);
      DIOG_APP_FRAME("tail_sync", "init.cu", 28);
      (void)gpusim::cudaStreamSynchronize(gpusim::kDefaultStream);
    }
  };
  return w;
}

TEST(SingleRun, PromotesRepeatingSitesAndTracesTheRest) {
  const ToolConfig cfg;
  SingleRunOptions opts;
  opts.promote_after = 3;
  const SingleRunResult r =
      run_single_run_analysis(repetitive_workload(50), cfg, opts);

  EXPECT_EQ(r.sites_seen, 1u);
  EXPECT_EQ(r.sites_promoted, 1u);
  // The first promote_after-1 occurrences are lost; the rest traced.
  EXPECT_EQ(r.occurrences_missed, opts.promote_after - 1);
  EXPECT_EQ(r.ops.size(), 50u - (opts.promote_after - 1));
  EXPECT_GT(r.coverage(), 0.9);
}

TEST(SingleRun, MissesOneShotStartupProblems) {
  const ToolConfig cfg;
  SingleRunOptions opts;
  opts.promote_after = 3;
  const SingleRunResult r =
      run_single_run_analysis(startup_heavy_workload(), cfg, opts);

  // The two init sites never reach the promotion threshold: the 80 ms
  // of startup blocking is invisible in the detailed trace.
  EXPECT_GE(r.missed_wait, ms(75));
  // The detailed ops only cover the (cheap) tail site.
  for (const OpRecord& op : r.ops) {
    EXPECT_EQ(op.api, hooks::Fn::kCudaStreamSynchronize);
  }
}

TEST(SingleRun, FfmSeesWhatSingleRunMisses) {
  // The §2.1 claim, as an assertion: FFM's multi-run collection traces
  // every occurrence, including the startup ones.
  const Workload w = startup_heavy_workload();
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage2Result s2 = run_stage2(w, cfg, s1);

  Duration ffm_device_sync_wait{0};
  for (const OpRecord& op : s2.ops) {
    if (op.api == hooks::Fn::kCudaDeviceSynchronize) {
      ffm_device_sync_wait += op.sync_wait;
    }
  }
  EXPECT_GE(ffm_device_sync_wait, ms(75));

  const SingleRunResult sr = run_single_run_analysis(w, cfg, {});
  Duration sr_device_sync_wait{0};
  for (const OpRecord& op : sr.ops) {
    if (op.api == hooks::Fn::kCudaDeviceSynchronize) {
      sr_device_sync_wait += op.sync_wait;
    }
  }
  EXPECT_EQ(sr_device_sync_wait, Duration{0});
}

TEST(SingleRun, PromoteAfterOneTracesAlmostEverything) {
  SingleRunOptions eager;
  eager.promote_after = 1;
  const SingleRunResult r =
      run_single_run_analysis(repetitive_workload(10), ToolConfig{}, eager);
  EXPECT_EQ(r.occurrences_missed, 0u);
  EXPECT_EQ(r.ops.size(), 10u);
}

TEST(SingleRun, CoverageOnRealApps) {
  // Rodinia's syncs repeat hundreds of times: single-run coverage is
  // high. The number it cannot see is bounded by sites x threshold.
  apps::RodiniaGaussianConfig cfg;
  cfg.matrix_dim = 64;
  const SingleRunResult r = run_single_run_analysis(
      apps::make_rodinia_gaussian(cfg), ToolConfig{}, {});
  EXPECT_GT(r.coverage(), 0.9);
  EXPECT_GT(r.sites_promoted, 0u);
}

}  // namespace
}  // namespace diog::ffm
