// The parallel subsystem (src/parallel/) and its three consumers:
// segment-parallel scans, the parallel one-shot save/open paths, and
// the stage-5 fan-out — plus the contract everything hangs on: output
// is byte-identical at any thread count. Also covers the satellite
// work: predicate-pushdown segment/block skipping, the FrameTable
// shared-lock fast path, blockwise content hashing, and fault
// injection surfacing cleanly from worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "core/diogenes.h"
#include "core/report.h"
#include "eventstore/cursor.h"
#include "eventstore/event_store.h"
#include "eventstore/parallel_scan.h"
#include "eventstore/run_io.h"
#include "hashing/content_hash.h"
#include "parallel/thread_pool.h"
#include "support/error.h"
#include "testkit/fault_plan.h"
#include "trace/callstack.h"

namespace {

using namespace diog;
namespace fs = std::filesystem;

// Every test restores the global thread override so ordering inside the
// binary cannot leak one test's pin into another.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_override_ = par::threads_override(); }
  void TearDown() override { par::set_threads(saved_override_); }

  static std::string temp_dir() {
    const std::string dir =
        (fs::temp_directory_path() /
         ("diog-parallel-" +
          std::to_string(::testing::UnitTest::GetInstance()
                             ->random_seed()) +
          "-" +
          ::testing::UnitTest::GetInstance()
              ->current_test_info()
              ->name()))
            .string();
    fs::create_directories(dir);
    return dir;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

 private:
  std::size_t saved_override_ = 0;
};

// --- Pool mechanics ----------------------------------------------------------

TEST_F(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    par::parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at threads " << tc;
    }
  }
}

TEST_F(ParallelTest, ParallelMapPlacesResultsByIndex) {
  par::set_threads(8);
  const std::vector<std::size_t> out =
      par::parallel_map<std::size_t>(5'000, [](std::size_t i) {
        return i * i;
      });
  ASSERT_EQ(out.size(), 5'000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, ParallelChunksCoverTheRangeInOrder) {
  par::set_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  par::parallel_chunks(1000, 64, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin % 64, 0u);
    EXPECT_LE(end - begin, 64u);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, LowestIndexExceptionWinsAtAnyThreadCount) {
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    try {
      par::parallel_for(1'000, [](std::size_t i) {
        if (i == 17 || i == 500 || i == 999) {
          throw Error("task " + std::to_string(i) + " failed");
        }
      });
      FAIL() << "expected an Error at threads " << tc;
    } catch (const Error& e) {
      // Deterministic error selection: always the lowest failing index,
      // never whichever thread happened to throw first.
      EXPECT_STREQ(e.what(), "task 17 failed") << "threads " << tc;
    }
  }
}

TEST_F(ParallelTest, PipelineOrderedConsumesStrictlyInOrder) {
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    constexpr std::size_t kN = 200;
    std::vector<int> produced(kN, 0);
    std::vector<std::size_t> consumed;
    par::pipeline_ordered(
        kN, /*window=*/4,
        [&](std::size_t i) { produced[i] = static_cast<int>(i) + 1; },
        [&](std::size_t i) {
          // Single consumer thread: no lock needed, and produce(i) must
          // have happened-before.
          EXPECT_EQ(produced[i], static_cast<int>(i) + 1);
          consumed.push_back(i);
        });
    ASSERT_EQ(consumed.size(), kN) << "threads " << tc;
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(consumed[i], i) << "threads " << tc;
    }
  }
}

TEST_F(ParallelTest, PipelineOrderedWindowBoundsProducerLookahead) {
  par::set_threads(8);
  constexpr std::size_t kWindow = 3;
  std::atomic<std::size_t> consumed{0};
  std::atomic<bool> violated{false};
  par::pipeline_ordered(
      100, kWindow,
      [&](std::size_t i) {
        // produce(i) may start only after consume(i - window) finished,
        // so a slot ring of `window` arenas is reuse-race-free.
        if (i >= kWindow && consumed.load() < i - kWindow + 1) {
          violated = true;
        }
      },
      [&](std::size_t i) { consumed.store(i + 1); });
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(consumed.load(), 100u);
}

TEST_F(ParallelTest, PipelineOrderedProducerExceptionWinsDeterministically) {
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    std::atomic<std::size_t> consumed{0};
    try {
      par::pipeline_ordered(
          50, 4,
          [](std::size_t i) {
            if (i == 7 || i == 30) {
              throw Error("produce " + std::to_string(i) + " failed");
            }
          },
          [&](std::size_t) {
            consumed.fetch_add(1, std::memory_order_relaxed);
          });
      FAIL() << "expected an Error at threads " << tc;
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "produce 7 failed") << "threads " << tc;
    }
    EXPECT_LT(consumed.load(), 50u);
  }
}

TEST_F(ParallelTest, PipelineOrderedConsumerExceptionAbortsAndRethrows) {
  for (const std::size_t tc : {std::size_t{1}, std::size_t{8}}) {
    par::set_threads(tc);
    try {
      par::pipeline_ordered(
          50, 4, [](std::size_t) {},
          [](std::size_t i) {
            if (i == 5) throw Error("consume 5 failed");
          });
      FAIL() << "expected an Error at threads " << tc;
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "consume 5 failed") << "threads " << tc;
    }
  }
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  par::set_threads(4);
  std::atomic<std::size_t> total{0};
  par::parallel_for(8, [&](std::size_t) {
    // A fixed-size pool deadlocks if nested fan-outs queue behind their
    // own parents; the contract is that nesting runs inline.
    par::parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST_F(ParallelTest, ThreadCountResolutionPrefersOverride) {
  par::set_threads(3);
  EXPECT_EQ(par::configured_threads(), 3u);
  par::set_threads(0);
  EXPECT_GE(par::configured_threads(), 1u);
  EXPECT_EQ(par::hardware_threads(),
            std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

// --- Segment-parallel scans --------------------------------------------------

// Multi-segment store with PHASE-ORDERED kinds, the shape the real
// pipeline produces (each collection stage appends its own event kinds
// in a burst, not interleaved row-by-row).
void fill_phased(evstore::EventStore& store, std::uint64_t per_phase) {
  evstore::Event e;
  e.kind = evstore::EventKind::kOp;
  for (std::uint64_t i = 0; i < per_phase; ++i) {
    e.t_start = static_cast<std::int64_t>(i);
    e.t_end = e.t_start + 5;
    store.append(e);
  }
  e = evstore::Event{};
  e.kind = evstore::EventKind::kSyncUse;
  e.aux_time = 42;
  for (std::uint64_t i = 0; i < per_phase; ++i) store.append(e);
  e = evstore::Event{};
  e.kind = evstore::EventKind::kInternalSpan;
  for (std::uint64_t i = 0; i < per_phase; ++i) store.append(e);
}

TEST_F(ParallelTest, ParallelScanMatchesSerialAtEveryThreadCount) {
  evstore::EventStore store;
  fill_phased(store, evstore::kSegmentRows / 2 + 1'000);  // ~3 segments

  evstore::Cursor serial(store);
  serial.kind(evstore::EventKind::kSyncUse);
  const std::uint64_t expected = serial.count();
  ASSERT_GT(expected, 0u);

  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    evstore::Cursor proto(store);
    proto.kind(evstore::EventKind::kSyncUse);
    evstore::ScanStats stats;
    EXPECT_EQ(evstore::parallel_count(store, proto, &stats), expected)
        << "threads " << tc;
  }
}

TEST_F(ParallelTest, ParallelCollectPreservesAppendOrder) {
  evstore::EventStore store;
  fill_phased(store, evstore::kSegmentRows / 2 + 500);

  evstore::Cursor proto(store);
  proto.kind(evstore::EventKind::kOp);
  std::vector<evstore::Event> serial_events;
  {
    evstore::Cursor c = proto;
    c.for_each([&](const evstore::Event& e) { serial_events.push_back(e); });
  }

  for (const std::size_t tc : {std::size_t{2}, std::size_t{8}}) {
    par::set_threads(tc);
    const std::vector<evstore::Event> par_events =
        evstore::parallel_collect(store, proto);
    ASSERT_EQ(par_events.size(), serial_events.size()) << "threads " << tc;
    for (std::size_t i = 0; i < par_events.size(); ++i) {
      ASSERT_EQ(par_events[i].t_start, serial_events[i].t_start)
          << "row " << i << " at threads " << tc;
    }
  }
}

// ISSUE satellite: a single-kind filter over a mixed-kind multi-segment
// store must actually skip segments (the bench used to report
// filtered_segments_skipped: 0).
TEST_F(ParallelTest, KindFilterSkipsWholeSegmentsInPhasedStore) {
  evstore::EventStore store;
  fill_phased(store, evstore::kSegmentRows + 100);  // >3 segments

  evstore::Cursor c(store);
  c.kind(evstore::EventKind::kInternalSpan);  // only the last phase
  (void)c.count();
  EXPECT_GE(c.segments_skipped(), 1u)
      << "segment-stats pushdown rejected nothing on a store where whole "
         "segments contain no matching kind";
}

// At sub-segment scale (the 10K-event case), segment stats cannot help —
// the whole store is one segment — but the finer block stats must.
TEST_F(ParallelTest, KindFilterSkipsBlocksInsideOneSegment) {
  evstore::EventStore store;
  static_assert(evstore::kBlockRows < evstore::kSegmentRows);
  fill_phased(store, 3 * evstore::kBlockRows);  // 3 phases, 1 segment

  evstore::Cursor c(store);
  c.kind(evstore::EventKind::kInternalSpan);
  const std::uint64_t n = c.count();
  EXPECT_EQ(n, 3 * evstore::kBlockRows);
  EXPECT_EQ(c.segments_skipped(), 0u);  // single segment, can't skip
  EXPECT_GE(c.blocks_skipped(), 1u)
      << "block-stats pushdown rejected nothing inside the segment";
}

TEST_F(ParallelTest, ScanStatsAggregateAcrossShards) {
  evstore::EventStore store;
  fill_phased(store, evstore::kSegmentRows + 100);

  par::set_threads(4);
  evstore::Cursor proto(store);
  proto.kind(evstore::EventKind::kInternalSpan);
  evstore::ScanStats stats;
  (void)evstore::parallel_count(store, proto, &stats);
  EXPECT_GE(stats.segments_skipped + stats.blocks_skipped, 1u);
}

// --- Save / open determinism (ISSUE satellite 3) -----------------------------

evstore::TraceRun synthetic_run(std::uint64_t events) {
  evstore::TraceRun run;
  run.meta.workload = "parallel-test";
  const trace::Frame* f = trace::FrameTable::instance().intern(
      "kernel_launch", "app.cu", 42);
  const trace::StackTrace st({f});
  const evstore::StackId sid = run.store->intern_stack(st);
  const evstore::NameId nid = run.store->intern_name("axpy");
  evstore::Event e;
  for (std::uint64_t i = 0; i < events; ++i) {
    e.kind = i % 7 == 0 ? evstore::EventKind::kSyncUse
                        : evstore::EventKind::kOp;
    e.stack = sid;
    e.name = nid;
    e.op_index = i;
    e.t_start = static_cast<std::int64_t>(i * 10);
    e.t_end = e.t_start + 7;
    e.aux_time = static_cast<std::int64_t>(i % 13);
    e.bytes = i * 3;
    e.value = i;
    run.store->append(e);
  }
  return run;
}

TEST_F(ParallelTest, SavedFileBytesAreIdenticalAtThreads128) {
  const std::string dir = temp_dir();
  const evstore::TraceRun run =
      synthetic_run(2 * evstore::kSegmentRows + 777);  // 3 chunks

  std::string ref;
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    const std::string path =
        dir + "/save-t" + std::to_string(tc) + ".dgtrace";
    evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 7});
    const std::string bytes = slurp(path);
    ASSERT_FALSE(bytes.empty());
    if (ref.empty()) {
      ref = bytes;
    } else {
      EXPECT_EQ(bytes, ref) << "threads " << tc
                            << " produced different file bytes";
    }
  }
  fs::remove_all(dir);
}

TEST_F(ParallelTest, ParallelOpenMatchesSerialOpen) {
  const std::string dir = temp_dir();
  const evstore::TraceRun run = synthetic_run(evstore::kSegmentRows + 999);
  const std::string path = dir + "/roundtrip.dgtrace";
  par::set_threads(1);
  evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 0});

  std::string ref_stats;
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    for (const evstore::ReadMode mode :
         {evstore::ReadMode::kMmap, evstore::ReadMode::kStream}) {
      evstore::RunFileInfo info;
      const evstore::TraceRun reread = evstore::open_run(path, mode, &info);
      EXPECT_TRUE(info.clean && info.finalized);
      ASSERT_EQ(reread.store->size(), run.store->size());
      const std::string stats = reread.store->stat_json().dump();
      if (ref_stats.empty()) {
        ref_stats = stats;
      } else {
        EXPECT_EQ(stats, ref_stats)
            << "threads " << tc << " reopened to a different store";
      }
      // Spot-check row content survived the parallel column copy.
      const evstore::Event last =
          reread.store->event(reread.store->size() - 1);
      const evstore::Event expect_last =
          run.store->event(run.store->size() - 1);
      EXPECT_EQ(last.t_start, expect_last.t_start);
      EXPECT_EQ(last.value, expect_last.value);
    }
  }
  fs::remove_all(dir);
}

TEST_F(ParallelTest, AnalysisExportIsByteIdenticalAtThreads128) {
  const std::string dir = temp_dir();
  const apps::AppPair app = apps::all_apps().at(0);
  ffm::ToolConfig cfg;
  ffm::Diogenes tool(app.pathological, cfg);
  const ffm::AnalysisResult base = tool.analyze();
  const std::string expected = ffm::export_json(base).dump();

  const std::string save_path = dir + "/analysis.dgtrace";
  std::string ref_bytes;
  for (const std::size_t tc : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
    par::set_threads(tc);
    const ffm::AnalysisResult again = ffm::run_analysis(base.run, cfg);
    EXPECT_EQ(ffm::export_json(again).dump(), expected)
        << "analysis diverged at threads " << tc;
    evstore::save_run(save_path, base.run,
                      evstore::SaveOptions{.footer_wall_ms = 0});
    const std::string bytes = slurp(save_path);
    if (ref_bytes.empty()) {
      ref_bytes = bytes;
    } else {
      EXPECT_EQ(bytes, ref_bytes) << "saved bytes diverged at threads " << tc;
    }
  }
  fs::remove_all(dir);
}

// --- Fault injection from worker threads (ISSUE satellite 3) -----------------

TEST_F(ParallelTest, SegmentAllocFaultDuringParallelOpenIsACleanError) {
  const std::string dir = temp_dir();
  const evstore::TraceRun run = synthetic_run(evstore::kSegmentRows + 500);
  const std::string path = dir + "/faulted.dgtrace";
  evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 0});

  for (const std::size_t tc : {std::size_t{2}, std::size_t{8}}) {
    par::set_threads(tc);
    testkit::FaultPlan plan(1);
    testkit::FaultSpec s;
    s.site = "event_store.segment_alloc";
    s.action = testkit::FaultAction::kFail;
    s.max_fires = 1;
    plan.add(s);
    testkit::FaultScope scope(plan);
    // The fault fires on whichever worker claims that chunk; it must
    // surface as the same classified Error a serial open would raise —
    // no crash, no deadlock, no std::terminate from a joined thread.
    EXPECT_THROW((void)evstore::open_run(path), Error) << "threads " << tc;
    EXPECT_GE(plan.fires("event_store.segment_alloc"), 1u);
  }
  // The injection plane must not have poisoned later opens.
  evstore::RunFileInfo info;
  const evstore::TraceRun ok = evstore::open_run(path, evstore::ReadMode::kAuto,
                                                 &info);
  EXPECT_TRUE(info.clean && info.finalized);
  EXPECT_EQ(ok.store->size(), run.store->size());
  fs::remove_all(dir);
}

TEST_F(ParallelTest, BadAllocFaultPropagatesTypeFromWorkerThread) {
  const std::string dir = temp_dir();
  const evstore::TraceRun run = synthetic_run(evstore::kSegmentRows + 500);
  const std::string path = dir + "/faulted-ba.dgtrace";
  evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 0});

  par::set_threads(8);
  testkit::FaultPlan plan(1);
  testkit::FaultSpec s;
  s.site = "event_store.segment_alloc";
  s.action = testkit::FaultAction::kBadAlloc;
  s.max_fires = 1;
  plan.add(s);
  testkit::FaultScope scope(plan);
  EXPECT_THROW((void)evstore::open_run(path), std::bad_alloc);
  fs::remove_all(dir);
}

// --- FrameTable multi-reader fast path (ISSUE satellite 1) -------------------

TEST_F(ParallelTest, FrameTableConcurrentInternStaysConsistent) {
  // Mixed readers and writers racing over an overlapping key set: every
  // thread must observe one canonical Frame* per distinct key.
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  std::vector<std::vector<const trace::Frame*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      auto& mine = seen[t];
      mine.resize(kKeys);
      for (int round = 0; round < 50; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          const trace::Frame* f = trace::FrameTable::instance().intern(
              "mt_fn_" + std::to_string(k), "mt.cu", k);
          if (mine[k] == nullptr) mine[k] = f;
          // Stable: repeated interning never re-allocates the frame.
          ASSERT_EQ(mine[k], f);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]) << "thread " << t << " key " << k;
    }
  }
}

TEST_F(ParallelTest, FrameTableMultiReaderThroughput) {
  // Warm the table, then hammer it with pure readers. The assertion is
  // a conservative throughput floor — shared-lock lookups must sustain
  // well beyond pathological-serialization rates even on one core —
  // plus a hard liveness bound.
  constexpr int kKeys = 128;
  for (int k = 0; k < kKeys; ++k) {
    (void)trace::FrameTable::instance().intern(
        "ro_fn_" + std::to_string(k), "ro.cu", k);
  }
  constexpr int kThreads = 4;
  constexpr int kLookupsPerThread = 50'000;
  std::atomic<std::uint64_t> total{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&total] {
      std::uint64_t n = 0;
      for (int i = 0; i < kLookupsPerThread; ++i) {
        const int k = i % kKeys;
        if (trace::FrameTable::instance().intern(
                "ro_fn_" + std::to_string(k), "ro.cu", k) != nullptr) {
          ++n;
        }
      }
      total.fetch_add(n, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(total.load(),
            static_cast<std::uint64_t>(kThreads) * kLookupsPerThread);
  const double per_sec = static_cast<double>(total.load()) / secs;
  // 200k single-frame lookups across 4 readers: anything below 50k/s
  // total means readers are serializing pathologically (or worse).
  EXPECT_GT(per_sec, 50'000.0) << "multi-reader intern throughput collapsed";
}

// --- Blockwise content hashing ----------------------------------------------

TEST_F(ParallelTest, BlockedHashMatchesPlainHashForSmallBuffers) {
  std::vector<std::byte> buf(hash::kHashBlockBytes);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 31 + 7);
  }
  EXPECT_EQ(hash::hash64_blocked(buf), hash::hash64(buf));
  const std::span<const std::byte> half(buf.data(), buf.size() / 2);
  EXPECT_EQ(hash::hash64_blocked(half), hash::hash64(half));
}

TEST_F(ParallelTest, BlockedHashIsThreadCountInvariant) {
  std::vector<std::byte> buf(3 * hash::kHashBlockBytes + 12345);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i ^ (i >> 8));
  }
  par::set_threads(1);
  const hash::Digest serial = hash::hash64_blocked(buf);
  for (const std::size_t tc : {std::size_t{2}, std::size_t{8}}) {
    par::set_threads(tc);
    EXPECT_EQ(hash::hash64_blocked(buf), serial) << "threads " << tc;
  }
  // Content sensitivity survives the blocking.
  buf[2 * hash::kHashBlockBytes + 99] ^= std::byte{1};
  EXPECT_NE(hash::hash64_blocked(buf), serial);
}

}  // namespace
