// Tests for the four collection stages on purpose-built synthetic
// workloads whose ground truth is known by construction.
#include <gtest/gtest.h>

#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "core/stage4_syncuse.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "gpusim/private_api.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::HostBuffer;
using gpusim::KernelDesc;
using hooks::Fn;
using hooks::MemcpyKind;

Workload make_workload(std::string name, std::function<void()> body) {
  Workload w;
  w.name = std::move(name);
  w.device = gpusim::DeviceConfig{};
  w.body = std::move(body);
  return w;
}

// --- Stage 1: discovery --------------------------------------------------------

TEST(Stage1Discovery, FindsTheWaitFunnelByProbing) {
  EXPECT_EQ(discover_wait_fn(gpusim::DeviceConfig{}),
            Fn::kInternalWaitForStream);
}

TEST(Stage1Discovery, RepeatableAcrossConfigs) {
  gpusim::DeviceConfig d;
  d.probe_watchdog = secs(0.25);
  EXPECT_EQ(discover_wait_fn(d), Fn::kInternalWaitForStream);
}

// --- Stage 1: baseline measurement ------------------------------------------------

TEST(Stage1Baseline, RecordsExecTimeAndSyncSites) {
  const Workload w = make_workload("s1", [] {
    DIOG_APP_FRAME("main", "app.cc", 10);
    KernelDesc k;
    k.name = "k";
    k.duration = ms(5);
    (void)gpusim::cudaLaunchKernel(k);
    {
      DIOG_APP_FRAME("solve", "app.cc", 20);
      (void)gpusim::cudaDeviceSynchronize();
    }
    gpusim::cpu_work(ms(3));
  });

  const Stage1Result r = run_stage1(w, ToolConfig{});
  EXPECT_EQ(r.wait_fn, Fn::kInternalWaitForStream);
  EXPECT_GE(r.exec_time, ms(8));
  ASSERT_EQ(r.sync_sites.size(), 1u);
  EXPECT_EQ(r.sync_sites[0].api, Fn::kCudaDeviceSynchronize);
  EXPECT_EQ(r.sync_sites[0].hits, 1u);
  EXPECT_EQ(r.sync_sites[0].stack.leaf()->function, "solve");
}

TEST(Stage1Baseline, SeesHiddenSyncSites) {
  const Workload w = make_workload("s1_hidden", [] {
    DIOG_APP_FRAME("main", "app.cc", 10);
    KernelDesc k;
    k.name = "k";
    k.duration = ms(5);
    (void)gpusim::cudaLaunchKernel(k);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, 64);
    (void)gpusim::cudaFree(dev);  // implicit sync, invisible to CUPTI
  });

  const Stage1Result r = run_stage1(w, ToolConfig{});
  ASSERT_EQ(r.sync_sites.size(), 1u);
  EXPECT_EQ(r.sync_sites[0].api, Fn::kCudaFree);
}

TEST(Stage1Baseline, SeesPrivateApiSyncs) {
  const Workload w = make_workload("s1_priv", [] {
    KernelDesc k;
    k.name = "k";
    k.duration = ms(5);
    (void)gpusim::cudaLaunchKernel(k);
    gpusim::priv::cuPrivSync();
  });
  const Stage1Result r = run_stage1(w, ToolConfig{});
  ASSERT_EQ(r.sync_sites.size(), 1u);
  EXPECT_EQ(r.sync_sites[0].api, Fn::kPrivSync);
}

TEST(Stage1Baseline, DedupsRepeatedSitesByStack) {
  const Workload w = make_workload("s1_loop", [] {
    DIOG_APP_FRAME("main", "app.cc", 10);
    for (int i = 0; i < 10; ++i) {
      KernelDesc k;
      k.name = "k";
      k.duration = us(100);
      (void)gpusim::cudaLaunchKernel(k);
      DIOG_APP_FRAME("loop_sync", "app.cc", 30);
      (void)gpusim::cudaDeviceSynchronize();
    }
  });
  const Stage1Result r = run_stage1(w, ToolConfig{});
  ASSERT_EQ(r.sync_sites.size(), 1u);
  EXPECT_EQ(r.sync_sites[0].hits, 10u);
}

TEST(Stage1Baseline, TracedFnsIncludeSitesTransfersAndExplicitSyncs) {
  Stage1Result r;
  r.sync_sites.push_back(SyncSite{Fn::kCudaFree, {}, 3});
  const auto fns = r.traced_fns();
  const auto has = [&](Fn f) {
    return std::find(fns.begin(), fns.end(), f) != fns.end();
  };
  EXPECT_TRUE(has(Fn::kCudaFree));            // from the site list
  EXPECT_TRUE(has(Fn::kCudaMemcpy));          // documented transfer fn
  EXPECT_TRUE(has(Fn::kCudaMemcpyAsync));
  EXPECT_TRUE(has(Fn::kPrivMemcpyDtoH));
  EXPECT_TRUE(has(Fn::kCudaDeviceSynchronize));  // explicit sync
  EXPECT_FALSE(has(Fn::kCudaMalloc));         // never traced
  EXPECT_FALSE(has(Fn::kCudaLaunchKernel));
}

// --- Stage 2: detailed tracing ------------------------------------------------------

TEST(Stage2, TracesSyncAndTransferOpsWithTiming) {
  const Workload w = make_workload("s2", [] {
    DIOG_APP_FRAME("main", "app.cc", 10);
    KernelDesc k;
    k.name = "k";
    k.duration = ms(4);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaDeviceSynchronize();
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, 1 << 20);
    HostBuffer<char> host(1 << 20);
    (void)gpusim::cudaMemcpy(dev, host.data(), 1 << 20,
                             MemcpyKind::kHostToDevice);
    (void)gpusim::cudaFree(dev);
  });

  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage2Result s2 = run_stage2(w, cfg, s1);

  // deviceSync + memcpy + free are traced; malloc and launch are not.
  ASSERT_EQ(s2.ops.size(), 3u);
  EXPECT_EQ(s2.ops[0].api, Fn::kCudaDeviceSynchronize);
  EXPECT_TRUE(s2.ops[0].performed_sync);
  EXPECT_GE(s2.ops[0].sync_wait, ms(3));

  EXPECT_EQ(s2.ops[1].api, Fn::kCudaMemcpy);
  EXPECT_TRUE(s2.ops[1].performed_transfer);
  EXPECT_EQ(s2.ops[1].bytes, 1u << 20);
  EXPECT_EQ(s2.ops[1].direction, MemcpyKind::kHostToDevice);

  EXPECT_EQ(s2.ops[2].api, Fn::kCudaFree);
  // Indices are sequential and times ordered.
  for (std::size_t i = 0; i < s2.ops.size(); ++i) {
    EXPECT_EQ(s2.ops[i].index, i);
    EXPECT_LE(s2.ops[i].t_enter, s2.ops[i].t_exit);
  }
}

TEST(Stage2, StacksAttributeToAppFrames) {
  const Workload w = make_workload("s2_stack", [] {
    DIOG_APP_FRAME("outer", "app.cc", 5);
    KernelDesc k;
    k.name = "k";
    k.duration = us(100);
    (void)gpusim::cudaLaunchKernel(k);
    DIOG_APP_FRAME("inner", "app.cc", 42);
    (void)gpusim::cudaDeviceSynchronize();
  });
  const ToolConfig cfg;
  const Stage2Result s2 = run_stage2(w, cfg, run_stage1(w, cfg));
  ASSERT_EQ(s2.ops.size(), 1u);
  EXPECT_EQ(s2.ops[0].stack.leaf()->function, "inner");
  EXPECT_EQ(s2.ops[0].stack.leaf()->line, 42);
}

TEST(Stage2, JsonRoundTrip) {
  const Workload w = make_workload("s2_json", [] {
    KernelDesc k;
    k.name = "k";
    k.duration = us(500);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaDeviceSynchronize();
  });
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage2Result s2 = run_stage2(w, cfg, s1);
  const Stage2Result restored = Stage2Result::from_json(s2.to_json());
  ASSERT_EQ(restored.ops.size(), s2.ops.size());
  EXPECT_EQ(restored.exec_time, s2.exec_time);
  EXPECT_EQ(restored.ops[0].api, s2.ops[0].api);
  EXPECT_EQ(restored.ops[0].sync_wait, s2.ops[0].sync_wait);
  EXPECT_EQ(restored.ops[0].stack, s2.ops[0].stack);

  const Stage1Result s1_restored = Stage1Result::from_json(s1.to_json());
  EXPECT_EQ(s1_restored.wait_fn, s1.wait_fn);
  EXPECT_EQ(s1_restored.sync_sites.size(), s1.sync_sites.size());
}

// --- Stage 3: sync classification + dedup --------------------------------------------

// Workload A: a sync protecting data the CPU reads -> required.
// Workload B: a sync protecting nothing -> unnecessary.
struct SyncUseWorkload {
  bool read_data;
  std::shared_ptr<HostBuffer<float>> out =
      std::make_shared<HostBuffer<float>>(1024);

  void operator()() const {
    DIOG_APP_FRAME("main", "app.cc", 1);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    KernelDesc k;
    k.name = "producer";
    k.duration = ms(2);
    k.body = [dev] { static_cast<float*>(dev)[0] = 3.25f; };
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    gpusim::cpu_work(ms(1));
    if (read_data) {
      DIOG_APP_FRAME("consume", "app.cc", 77);
      volatile float v = (*out)[0];
      (void)v;
    }
    (void)gpusim::cudaFree(dev);
  }
};

TEST(Stage3, SyncProtectingReadDataIsRequired) {
  const Workload w = make_workload("s3_req", SyncUseWorkload{true});
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage3Result s3 = run_stage3(w, cfg, s1);

  // Find the memcpy op's classification (op 0 = the D2H memcpy).
  bool found_required = false;
  for (const SyncClassification& c : s3.syncs) {
    if (c.required) {
      found_required = true;
      EXPECT_EQ(c.access_stack.leaf()->function, "consume");
      EXPECT_EQ(c.access_stack.leaf()->line, 77);
    }
  }
  EXPECT_TRUE(found_required);
}

TEST(Stage3, SyncProtectingNothingIsUnnecessary) {
  const Workload w = make_workload("s3_unnec", SyncUseWorkload{false});
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage3Result s3 = run_stage3(w, cfg, s1);
  for (const SyncClassification& c : s3.syncs) {
    EXPECT_FALSE(c.required);
  }
  EXPECT_FALSE(s3.syncs.empty());
}

TEST(Stage3, DuplicateTransfersDetectedWithFirstSite) {
  auto tile = std::make_shared<HostBuffer<float>>(4096);
  (*tile)[7] = 1.5f;
  const Workload w = make_workload("s3_dup", [tile] {
    DIOG_APP_FRAME("main", "app.cc", 1);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, tile->size_bytes());
    for (int i = 0; i < 3; ++i) {
      (void)gpusim::cudaMemcpy(dev, tile->data(), tile->size_bytes(),
                               MemcpyKind::kHostToDevice);
    }
    (void)gpusim::cudaFree(dev);
  });
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage3Result s3 = run_stage3(w, cfg, s1);

  ASSERT_EQ(s3.duplicate_transfers.size(), 2u);
  EXPECT_EQ(s3.duplicate_transfers[0].first_op_index, 0u);
  EXPECT_EQ(s3.duplicate_transfers[0].op_index, 1u);
  EXPECT_EQ(s3.duplicate_transfers[1].op_index, 2u);
  EXPECT_EQ(s3.duplicate_transfers[0].bytes, tile->size_bytes());
  EXPECT_EQ(s3.transfers_hashed, 3u);
  EXPECT_EQ(s3.bytes_hashed, 3 * tile->size_bytes());
}

TEST(Stage3, ChangingContentIsNotDuplicate) {
  auto tile = std::make_shared<HostBuffer<float>>(4096);
  const Workload w = make_workload("s3_fresh", [tile] {
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, tile->size_bytes());
    for (int i = 0; i < 3; ++i) {
      (*tile)[0] = static_cast<float>(i);
      (void)gpusim::cudaMemcpy(dev, tile->data(), tile->size_bytes(),
                               MemcpyKind::kHostToDevice);
    }
    (void)gpusim::cudaFree(dev);
  });
  const ToolConfig cfg;
  const Stage3Result s3 = run_stage3(w, cfg, run_stage1(w, cfg));
  EXPECT_TRUE(s3.duplicate_transfers.empty());
}

TEST(Stage3, ManagedMemoryIsABlindSpot) {
  // Kernel writes to managed memory are deliberately untracked (§5.3
  // parity): the memset-style sync on managed data classifies as
  // unnecessary even though the CPU touches the buffer afterwards.
  const Workload w = make_workload("s3_managed", [] {
    void* managed = nullptr;
    (void)gpusim::cudaMallocManaged(&managed, 4096);
    KernelDesc k;
    k.name = "k";
    k.duration = ms(2);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaMemset(managed, 0, 4096);  // conditional sync
    static_cast<char*>(managed)[0] = 1;          // CPU touch
    (void)gpusim::cudaFree(managed);
  });
  const ToolConfig cfg;
  const Stage3Result s3 = run_stage3(w, cfg, run_stage1(w, cfg));
  for (const SyncClassification& c : s3.syncs) {
    EXPECT_FALSE(c.required);
  }
}

// --- Stage 4: sync-use timing ----------------------------------------------------------

TEST(Stage4, MeasuresFirstUseGap) {
  auto out = std::make_shared<HostBuffer<float>>(1024);
  const Workload w = make_workload("s4", [out] {
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    KernelDesc k;
    k.name = "k";
    k.duration = ms(2);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    gpusim::cpu_work(ms(5));  // the data sits unused for 5 ms...
    volatile float v = (*out)[0];
    (void)v;
    (void)gpusim::cudaFree(dev);
  });
  const ToolConfig cfg;
  const Stage4Result s4 = run_stage4(w, cfg, run_stage1(w, cfg));
  ASSERT_EQ(s4.uses.size(), 1u);
  // The gap reflects the 5 ms idle period (dilated by the stage's light
  // instrumentation factor).
  EXPECT_GE(s4.uses[0].first_use_time, ms(5));
  EXPECT_LE(s4.uses[0].first_use_time, ms(9));
}

TEST(Stage4, OnlyRequiredSyncsReported) {
  const Workload w = make_workload("s4_none", [] {
    KernelDesc k;
    k.name = "k";
    k.duration = ms(1);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaDeviceSynchronize();  // protects nothing
  });
  const ToolConfig cfg;
  const Stage4Result s4 = run_stage4(w, cfg, run_stage1(w, cfg));
  EXPECT_TRUE(s4.uses.empty());
}

TEST(Stages, OpIndicesAlignAcrossRuns) {
  // The pipeline's join key: the k-th traced op must denote the same
  // operation in stages 2 and 3.
  auto tile = std::make_shared<HostBuffer<float>>(1024);
  const Workload w = make_workload("align", [tile] {
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, tile->size_bytes());
    KernelDesc k;
    k.name = "k";
    k.duration = us(200);
    for (int i = 0; i < 4; ++i) {
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaMemcpy(dev, tile->data(), tile->size_bytes(),
                               MemcpyKind::kHostToDevice);
      (void)gpusim::cudaDeviceSynchronize();
    }
    (void)gpusim::cudaFree(dev);
  });
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  const Stage2Result s2 = run_stage2(w, cfg, s1);
  const Stage3Result s3 = run_stage3(w, cfg, s1);

  // Every stage-3 classification index must point at a stage-2 op that
  // performed a synchronization.
  for (const SyncClassification& c : s3.syncs) {
    ASSERT_LT(c.op_index, s2.ops.size());
    EXPECT_TRUE(s2.ops[c.op_index].performed_sync);
  }
  // Every duplicate index must point at a transfer op.
  for (const DuplicateTransfer& d : s3.duplicate_transfers) {
    ASSERT_LT(d.op_index, s2.ops.size());
    EXPECT_TRUE(s2.ops[d.op_index].performed_transfer);
  }
}

}  // namespace
}  // namespace diog::ffm
