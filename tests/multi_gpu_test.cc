// Multi-GPU tests: the paper's Ray nodes carried four Pascal-class GPUs
// per node. Device selection, per-device streams and memory, peer
// copies, and the interaction with the tool's instrumentation.
#include <gtest/gtest.h>

#include <cstring>

#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "gpusim/api.h"
#include "gpusim/runtime.h"
#include "trace/callstack.h"

namespace gpusim {
namespace {

using diog::Duration;

DeviceConfig quad_config() {
  DeviceConfig d;
  d.device_count = 4;
  d.h2d_bandwidth_bytes_per_s = 1e9;
  d.d2h_bandwidth_bytes_per_s = 1e9;
  d.p2p_bandwidth_bytes_per_s = 4e9;
  d.transfer_latency = diog::us(10);
  d.device_memory_bytes = 4 << 20;  // small, to test capacity isolation
  return d;
}

KernelDesc kernel(Duration dur) {
  KernelDesc k;
  k.name = "k";
  k.duration = dur;
  return k;
}

class MultiGpuTest : public ::testing::Test {
 protected:
  MultiGpuTest() : rt_(quad_config()), scope_(rt_) {}
  Runtime rt_;
  RuntimeScope scope_;
};

TEST_F(MultiGpuTest, DeviceCountAndSelection) {
  int count = 0;
  ASSERT_EQ(cudaGetDeviceCount(&count), cudaSuccess);
  EXPECT_EQ(count, 4);

  int dev = -1;
  (void)cudaGetDevice(&dev);
  EXPECT_EQ(dev, 0);
  ASSERT_EQ(cudaSetDevice(3), cudaSuccess);
  (void)cudaGetDevice(&dev);
  EXPECT_EQ(dev, 3);
  EXPECT_EQ(cudaSetDevice(4), cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaSetDevice(-1), cudaError_t::cudaErrorInvalidValue);
  (void)cudaSetDevice(0);
}

TEST_F(MultiGpuTest, KernelsOnDifferentDevicesOverlap) {
  (void)cudaSetDevice(0);
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  (void)cudaSetDevice(1);
  (void)cudaLaunchKernel(kernel(diog::ms(10)));
  // Synchronize both: total well under 20 ms — the devices ran
  // concurrently.
  (void)cudaDeviceSynchronize();  // device 1
  (void)cudaSetDevice(0);
  (void)cudaDeviceSynchronize();
  EXPECT_LT(rt_.clock().now(), diog::ms(12));
}

TEST_F(MultiGpuTest, DeviceSynchronizeIsPerDevice) {
  (void)cudaSetDevice(0);
  (void)cudaLaunchKernel(kernel(diog::ms(30)));
  (void)cudaSetDevice(1);
  (void)cudaLaunchKernel(kernel(diog::ms(1)));
  (void)cudaDeviceSynchronize();  // drains only device 1
  EXPECT_LT(rt_.clock().now(), diog::ms(5));
  EXPECT_FALSE(rt_.device(0).idle());
  (void)cudaSetDevice(0);
  (void)cudaDeviceSynchronize();
  EXPECT_GE(rt_.clock().now(), diog::ms(30));
}

TEST_F(MultiGpuTest, StreamsBelongToTheirDevice) {
  (void)cudaSetDevice(0);
  StreamId s0;
  (void)cudaStreamCreate(&s0);
  (void)cudaSetDevice(1);
  StreamId s1;
  (void)cudaStreamCreate(&s1);
  EXPECT_NE(s0, s1);  // globally unique ids
  // Using device 0's stream while device 1 is current fails.
  EXPECT_EQ(cudaLaunchKernel(kernel(diog::us(10)), s0),
            cudaError_t::cudaErrorInvalidResourceHandle);
  EXPECT_EQ(cudaLaunchKernel(kernel(diog::us(10)), s1), cudaSuccess);
  (void)cudaDeviceSynchronize();
  (void)cudaStreamDestroy(s1);
  (void)cudaSetDevice(0);
  (void)cudaStreamDestroy(s0);
}

TEST_F(MultiGpuTest, PerDeviceMemoryCapacity) {
  (void)cudaSetDevice(0);
  void* a = nullptr;
  ASSERT_EQ(cudaMalloc(&a, 3 << 20), cudaSuccess);  // 3 of 4 MiB on dev 0

  // Device 0 is nearly full...
  void* b = nullptr;
  EXPECT_EQ(cudaMalloc(&b, 2 << 20),
            cudaError_t::cudaErrorMemoryAllocation);
  // ...but device 1's capacity is untouched.
  (void)cudaSetDevice(1);
  ASSERT_EQ(cudaMalloc(&b, 2 << 20), cudaSuccess);
  EXPECT_EQ(rt_.memory().device_bytes_in_use(0), 3u << 20);
  EXPECT_EQ(rt_.memory().device_bytes_in_use(1), 2u << 20);

  std::size_t free_bytes = 0, total = 0;
  (void)cudaMemGetInfo(&free_bytes, &total);  // current device = 1
  EXPECT_EQ(total - free_bytes, 2u << 20);

  (void)cudaFree(b);
  (void)cudaSetDevice(0);
  (void)cudaFree(a);
}

TEST_F(MultiGpuTest, MemcpyPeerMovesBytes) {
  (void)cudaSetDevice(0);
  void* src = nullptr;
  (void)cudaMalloc(&src, 256);
  (void)cudaSetDevice(1);
  void* dst = nullptr;
  (void)cudaMalloc(&dst, 256);

  std::memcpy(src, "peer-to-peer payload", 21);
  ASSERT_EQ(cudaMemcpyPeer(dst, 1, src, 0, 256), cudaSuccess);
  EXPECT_EQ(std::memcmp(dst, "peer-to-peer payload", 21), 0);

  (void)cudaFree(dst);
  (void)cudaSetDevice(0);
  (void)cudaFree(src);
}

TEST_F(MultiGpuTest, PeerAccessSpeedsUpPeerCopies) {
  const std::size_t bytes = 2 << 20;  // 2 MiB
  (void)cudaSetDevice(0);
  void* src = nullptr;
  (void)cudaMalloc(&src, bytes);
  (void)cudaSetDevice(1);
  void* dst = nullptr;
  (void)cudaMalloc(&dst, bytes);

  // Without peer access: staged through the host (two 1 GB/s crossings
  // ~= 4 ms).
  Duration before = rt_.clock().now();
  (void)cudaMemcpyPeer(dst, 1, src, 0, bytes);
  const Duration staged = rt_.clock().now() - before;
  EXPECT_GE(staged, diog::ms(4));

  // With peer access from device 0 to 1: the 4 GB/s fabric (~0.5 ms).
  (void)cudaSetDevice(0);
  ASSERT_EQ(cudaDeviceEnablePeerAccess(1), cudaSuccess);
  before = rt_.clock().now();
  (void)cudaMemcpyPeer(dst, 1, src, 0, bytes);
  const Duration p2p = rt_.clock().now() - before;
  EXPECT_LT(p2p, staged / 4);

  (void)cudaDeviceDisablePeerAccess(1);
  before = rt_.clock().now();
  (void)cudaMemcpyPeer(dst, 1, src, 0, bytes);
  EXPECT_GE(rt_.clock().now() - before, diog::ms(4));  // staged again

  (void)cudaFree(src);
  (void)cudaSetDevice(1);
  (void)cudaFree(dst);
}

TEST_F(MultiGpuTest, PeerValidation) {
  EXPECT_EQ(cudaDeviceEnablePeerAccess(0),  // self
            cudaError_t::cudaErrorInvalidValue);
  EXPECT_EQ(cudaDeviceEnablePeerAccess(9),
            cudaError_t::cudaErrorInvalidValue);
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 64);
  char host[64];
  // Wrong device index for the pointer.
  EXPECT_EQ(cudaMemcpyPeer(dev, 1, dev, 0, 64),
            cudaError_t::cudaErrorInvalidDevicePointer);
  // Host pointers are rejected.
  EXPECT_EQ(cudaMemcpyPeer(host, 0, dev, 0, 64),
            cudaError_t::cudaErrorInvalidDevicePointer);
  (void)cudaFree(dev);
}

TEST_F(MultiGpuTest, FreeOfPeerDeviceAllocationWorks) {
  (void)cudaSetDevice(2);
  void* dev = nullptr;
  (void)cudaMalloc(&dev, 1024);
  (void)cudaSetDevice(0);
  // CUDA permits freeing from another device context.
  EXPECT_EQ(cudaFree(dev), cudaSuccess);
  EXPECT_EQ(rt_.memory().device_bytes_in_use(2), 0u);
}

// The tool keeps working on multi-GPU workloads: hidden syncs on any
// device flow through each device's wait funnel.
TEST(MultiGpuTool, StagesSeeMultiDeviceSyncs) {
  diog::ffm::Workload w;
  w.name = "multi_gpu_app";
  w.device = quad_config();
  w.body = [] {
    DIOG_APP_FRAME("mg_main", "mg.cu", 1);
    for (int d = 0; d < 2; ++d) {
      (void)cudaSetDevice(d);
      KernelDesc k;
      k.name = "k";
      k.duration = diog::ms(2);
      (void)cudaLaunchKernel(k);
      void* tmp = nullptr;
      (void)cudaMalloc(&tmp, 64);
      (void)cudaFree(tmp);  // hidden sync on device d
    }
    (void)cudaSetDevice(0);
  };

  const diog::ffm::ToolConfig cfg;
  const auto s1 = diog::ffm::run_stage1(w, cfg);
  bool free_site = false;
  for (const auto& site : s1.sync_sites) {
    if (site.api == diog::hooks::Fn::kCudaFree) free_site = true;
  }
  EXPECT_TRUE(free_site);

  const auto s2 = diog::ffm::run_stage2(w, cfg, s1);
  std::size_t free_syncs = 0;
  for (const auto& op : s2.ops) {
    if (op.api == diog::hooks::Fn::kCudaFree && op.sync_wait > Duration{0}) {
      ++free_syncs;
    }
  }
  EXPECT_EQ(free_syncs, 2u);  // one hidden sync per device
}

}  // namespace
}  // namespace gpusim
