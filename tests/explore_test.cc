// The trace explorer (ISSUE 6): HTTP parsing, the LoD aggregation
// layer's determinism contract, the Service error model over empty and
// torn runs, the viewport byte budget at a million events, the filtered
// dump's predicate pushdown, and the explanation engine's totality.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "archive/archive.h"
#include "core/diogenes.h"
#include "core/findings.h"
#include "core/report.h"
#include "eventstore/aggregate.h"
#include "eventstore/live_writer.h"
#include "eventstore/run_io.h"
#include "explore/explain.h"
#include "explore/http.h"
#include "explore/service.h"
#include "json/json.h"
#include "parallel/thread_pool.h"
#include "testkit/synth_run.h"

namespace diog {
namespace {

namespace fs = std::filesystem;

class ExploreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_explore_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    saved_threads_ = par::threads_override();
  }
  void TearDown() override {
    par::set_threads(saved_threads_);
    fs::remove_all(dir_);
  }

  std::string save(const std::string& name, const evstore::TraceRun& run) {
    const std::string path = dir_ + "/" + name + ".dgtrace";
    evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 0});
    return path;
  }

  static explore::HttpResponse get(explore::Service& svc,
                                   const std::string& target) {
    explore::HttpRequest req;
    EXPECT_TRUE(
        explore::parse_request_line("GET " + target + " HTTP/1.1", req))
        << target;
    return svc.handle(req);
  }

  std::string dir_;
  std::size_t saved_threads_ = 0;
};

// --- HTTP layer (no sockets) ------------------------------------------------

TEST(ExploreHttp, UrlDecodeHandlesEscapesAndPassesInvalidOnesThrough) {
  EXPECT_EQ(explore::url_decode("%41%2fb+c"), "A/b c");
  EXPECT_EQ(explore::url_decode("plain"), "plain");
  EXPECT_EQ(explore::url_decode("%zz%4"), "%zz%4");  // malformed: literal
}

TEST(ExploreHttp, ParseRequestLineSplitsPathAndQuery) {
  explore::HttpRequest req;
  ASSERT_TRUE(explore::parse_request_line(
      "GET /api/timeline?t0=10&t1=20&tracks=op%2cpage_fault HTTP/1.1", req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/api/timeline");
  EXPECT_EQ(req.get("tracks"), "op,page_fault");
  EXPECT_EQ(req.get_i64("t0", -1), 10);
  EXPECT_EQ(req.get_i64("t1", -1), 20);
  EXPECT_EQ(req.get_i64("missing", -7), -7);
  EXPECT_EQ(req.get_i64("tracks", -7), -7);  // non-numeric -> fallback

  EXPECT_FALSE(explore::parse_request_line("garbage", req));
  EXPECT_FALSE(explore::parse_request_line("GET /x", req));
}

// --- LoD binning ------------------------------------------------------------

TEST_F(ExploreTest, BinEventsIsIdenticalAtEveryThreadCount) {
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 50'000});
  const evstore::EventStore& store = *run.store;

  auto snapshot = [&store] {
    evstore::Cursor proto(store);
    proto.kind(evstore::EventKind::kOp);
    const evstore::BinnedSpans b =
        evstore::bin_events(store, proto, 0, 50'000'000, 777);
    std::string s = std::to_string(b.matched) + "|" +
                    std::to_string(b.bin_width) + "|" +
                    std::to_string(b.bins);
    for (const evstore::TimeBin& bin : b.data) {
      s += ";" + std::to_string(bin.count) + "," +
           std::to_string(bin.busy_ns) + "," +
           std::to_string(bin.rep.t_start) + "," +
           std::to_string(bin.rep.t_end) + "," +
           std::to_string(bin.rep.op_index);
    }
    return s;
  };

  par::set_threads(1);
  const std::string ref = snapshot();
  for (const std::size_t tc : {2, 8}) {
    par::set_threads(tc);
    EXPECT_EQ(snapshot(), ref) << "threads=" << tc;
  }
  EXPECT_NE(ref.find(";"), std::string::npos);
}

TEST_F(ExploreTest, BinEventsClampsAndHandlesEmptyRanges) {
  const evstore::TraceRun run = testkit::make_synthetic_run({.events = 100});
  evstore::Cursor proto(*run.store);
  const evstore::BinnedSpans huge =
      evstore::bin_events(*run.store, proto, 0, 1'000'000, 1 << 20);
  EXPECT_EQ(huge.bins, evstore::kMaxBins);
  const evstore::BinnedSpans inverted =
      evstore::bin_events(*run.store, proto, 10, 10, 64);
  EXPECT_EQ(inverted.bins, 1u);
  EXPECT_EQ(inverted.matched, 0u);
}

namespace {
// A store with one op per requested (t_start, t_end) pair: the minimal
// instrument for boundary arithmetic.
evstore::TraceRun run_with_ops(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& spans) {
  evstore::TraceRun run;
  std::uint64_t idx = 0;
  for (const auto& [t0, t1] : spans) {
    evstore::Event e;
    e.kind = evstore::EventKind::kOp;
    e.op_index = idx++;
    e.t_start = t0;
    e.t_end = t1;
    run.store->append(e);
  }
  return run;
}
}  // namespace

TEST_F(ExploreTest, BinBoundaryEventsLandInTheirOwnBinHalfOpen) {
  // Range [0, 100) over 10 bins: width 10, and an event starting
  // exactly on a boundary belongs to the bin it OPENS, not the one it
  // closes. t_start == t1 is outside the half-open viewport entirely.
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (std::int64_t t = 0; t <= 100; t += 10) spans.emplace_back(t, t + 3);
  const evstore::TraceRun run = run_with_ops(spans);
  evstore::Cursor proto(*run.store);
  const evstore::BinnedSpans b =
      evstore::bin_events(*run.store, proto, 0, 100, 10);
  ASSERT_EQ(b.bins, 10u);
  EXPECT_EQ(b.bin_width, 10);
  EXPECT_EQ(b.matched, 10u) << "t_start == 100 must fall outside [0, 100)";
  for (std::uint32_t i = 0; i < b.bins; ++i) {
    EXPECT_EQ(b.data[i].count, 1u) << "bin " << i;
    EXPECT_EQ(b.data[i].rep.t_start, static_cast<std::int64_t>(i) * 10)
        << "bin " << i;
  }
}

TEST_F(ExploreTest, ZeroDurationEventsCountButAddNoBusyTime) {
  const evstore::TraceRun run =
      run_with_ops({{5, 5}, {5, 5}, {7, 9}});
  evstore::Cursor proto(*run.store);
  const evstore::BinnedSpans b =
      evstore::bin_events(*run.store, proto, 0, 10, 1);
  ASSERT_EQ(b.bins, 1u);
  EXPECT_EQ(b.matched, 3u);
  EXPECT_EQ(b.data[0].count, 3u);
  EXPECT_EQ(b.data[0].busy_ns, 2) << "only the (7,9) op has duration";
  // The representative is the heaviest event, never a zero-width one
  // when an alternative exists.
  EXPECT_EQ(b.data[0].rep.t_start, 7);
}

TEST_F(ExploreTest, RangeOutsideTheExtentMatchesNothing) {
  const evstore::TraceRun run = run_with_ops({{0, 10}, {50, 60}, {90, 100}});
  evstore::Cursor proto(*run.store);
  const evstore::TimeExtent ext = evstore::time_extent(*run.store, proto);
  EXPECT_EQ(ext.t_min, 0);
  EXPECT_EQ(ext.t_max, 100);

  for (const auto& [t0, t1] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {1'000, 2'000}, {-500, -100}, {100, 200}}) {
    const evstore::BinnedSpans b =
        evstore::bin_events(*run.store, proto, t0, t1, 8);
    EXPECT_EQ(b.matched, 0u) << "[" << t0 << ", " << t1 << ")";
    for (const evstore::TimeBin& bin : b.data) EXPECT_EQ(bin.count, 0u);
  }
}

TEST_F(ExploreTest, EdgeCaseBinningIsDeterministicAcrossThreadCounts) {
  // Boundary-aligned and zero-duration events across several segments:
  // the shapes most likely to diverge under a sharded scan.
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (std::int64_t i = 0; i < 200'000; ++i) {
    spans.emplace_back(i * 10, (i % 3 == 0) ? i * 10 : i * 10 + 7);
  }
  const evstore::TraceRun run = run_with_ops(spans);
  auto snapshot = [&run] {
    evstore::Cursor proto(*run.store);
    const evstore::BinnedSpans b =
        evstore::bin_events(*run.store, proto, 0, 2'000'000, 333);
    std::string s;
    for (const evstore::TimeBin& bin : b.data) {
      s += std::to_string(bin.count) + "," + std::to_string(bin.busy_ns) +
           "," + std::to_string(bin.rep.op_index) + ";";
    }
    return s;
  };
  par::set_threads(1);
  const std::string ref = snapshot();
  for (const std::size_t tc : {2, 8}) {
    par::set_threads(tc);
    EXPECT_EQ(snapshot(), ref) << "threads=" << tc;
  }
}

// --- Service endpoints ------------------------------------------------------

TEST_F(ExploreTest, EndpointBodiesAreByteIdenticalAtEveryThreadCount) {
  save("tiny", testkit::make_synthetic_run({.events = 20'000}));
  const std::vector<std::string> targets = {
      "/api/timeline?run=tiny&px=512",
      "/api/timeline?run=tiny&px=64&tracks=op",
      "/api/flame?run=tiny",
      "/api/findings?run=tiny",
      "/api/syncsites?run=tiny",
  };
  std::vector<std::string> ref;
  for (const std::size_t tc : {1, 2, 8}) {
    par::set_threads(tc);
    // A fresh Service per thread count: nothing may answer from a cache
    // warmed under a different thread count.
    explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const explore::HttpResponse r = get(svc, targets[i]);
      EXPECT_EQ(r.status, 200) << targets[i];
      if (tc == 1) {
        ref.push_back(r.body);
      } else {
        EXPECT_EQ(r.body, ref[i]) << targets[i] << " threads=" << tc;
      }
    }
  }
}

TEST_F(ExploreTest, EmptyRunServesEveryEndpointWithoutServerError) {
  evstore::TraceRun empty;
  save("empty", empty);
  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  for (const std::string target :
       {"/api/runs", "/api/stat?run=empty", "/api/timeline?run=empty",
        "/api/flame?run=empty", "/api/findings?run=empty",
        "/api/syncsites?run=empty", "/", "/healthz"}) {
    const explore::HttpResponse r = get(svc, target);
    EXPECT_LT(r.status, 500) << target;
    if (r.content_type == "application/json") {
      EXPECT_NO_THROW((void)json::parse(r.body)) << target;
    }
  }
}

TEST_F(ExploreTest, TornLiveRunServesTheReadablePrefix) {
  const std::string path = dir_ + "/live.dgtrace";
  {
    // A writer that checkpoints every 1000 events and never finishes:
    // a live file with several complete chunks. Tearing a few bytes off
    // the end leaves the last chunk torn and the rest a clean prefix.
    const evstore::TraceRun src =
        testkit::make_synthetic_run({.events = 5'000});
    const evstore::EventStore& s = *src.store;
    evstore::TraceRun dst;
    dst.meta = src.meta;
    evstore::LiveRunWriter w(
        path, evstore::LiveRunWriter::Options{.fsync_checkpoints = false});
    for (std::uint64_t i = 0; i < s.size(); ++i) {
      evstore::Event e = s.event(i);
      e.stack = dst.store->intern_stack(s.stack_trace(e.stack));
      e.aux_stack = dst.store->intern_stack(s.stack_trace(e.aux_stack));
      e.name = e.name == evstore::kNoName
                   ? evstore::kNoName
                   : dst.store->intern_name(s.name(e.name));
      dst.store->append(e);
      if ((i + 1) % 1000 == 0) w.checkpoint(dst);
    }
  }
  fs::resize_file(path, fs::file_size(path) - 37);

  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  const explore::HttpResponse runs = get(svc, "/api/runs");
  ASSERT_EQ(runs.status, 200);
  EXPECT_NE(runs.body.find("in progress"), std::string::npos)
      << "live/torn state must be surfaced: " << runs.body;
  for (const std::string target :
       {"/api/stat?run=live", "/api/timeline?run=live", "/api/flame?run=live",
        "/api/syncsites?run=live"}) {
    const explore::HttpResponse r = get(svc, target);
    EXPECT_LT(r.status, 500) << target;
    EXPECT_NO_THROW((void)json::parse(r.body)) << target;
  }
  const json::Value tl = json::parse(get(svc, "/api/timeline?run=live").body);
  EXPECT_GT(tl.at("matched").as_int(), 0)
      << "the clean prefix must still be served";
}

TEST_F(ExploreTest, ErrorModelIs404ForUnknownAnd400ForBadParams) {
  save("ok", testkit::make_synthetic_run({.events = 1'000}));
  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  EXPECT_EQ(get(svc, "/api/stat?run=nope").status, 404);
  EXPECT_EQ(get(svc, "/api/timeline?run=../../etc/passwd").status, 404);
  EXPECT_EQ(get(svc, "/api/timeline?run=ok&tracks=flying_carpet").status,
            400);
  EXPECT_EQ(get(svc, "/api/timeline?run=ok&t0=9&t1=3").status, 400);
  EXPECT_EQ(get(svc, "/nope").status, 404);
  EXPECT_EQ(get(svc, "/healthz").status, 200);
}

TEST_F(ExploreTest, MillionEventViewportStaysUnderTheByteBudget) {
  save("big", testkit::make_synthetic_run({.events = 1'000'000}));
  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  for (const std::string target :
       {"/api/timeline?run=big&px=1024",
        "/api/timeline?run=big&px=2048&tracks=op,internal_span"}) {
    const explore::HttpResponse r = get(svc, target);
    ASSERT_EQ(r.status, 200) << target;
    EXPECT_LE(r.body.size(), std::size_t{512} * 1024) << target;
    const json::Value v = json::parse(r.body);
    EXPECT_GT(v.at("matched").as_int(), 900'000) << target;
  }
}

// --- Fleet endpoints --------------------------------------------------------

TEST_F(ExploreTest, HistoryEndpointBinsTheArchiveAndValidatesInput) {
  save("a", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 2}));
  save("b", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 2,
                                         .op_spacing_ns = 1001}));
  save("c", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 6}));
  archive::Archive ar(archive::ArchiveOptions{
      .root = dir_ + "/archive", .config = {}, .ingest_wall_ms = 0});
  for (const char* n : {"a", "b", "c"}) {
    (void)ar.add(dir_ + "/" + n + ".dgtrace");
  }

  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  EXPECT_EQ(get(svc, "/api/history").status, 400) << "workload is required";
  EXPECT_EQ(get(svc, "/api/history?workload=nope").status, 404);

  const explore::HttpResponse ok =
      get(svc, "/api/history?workload=synthetic&px=2");
  ASSERT_EQ(ok.status, 200);
  const json::Value v = json::parse(ok.body);
  EXPECT_EQ(v.at("schema").as_string(), "diogenes.history.v1");
  EXPECT_EQ(v.at("runs").as_int(), 3);
  ASSERT_EQ(v.at("bins").size(), 2u);
  // Equal-width partition of 3 ingests into 2 bins: [0,1) and [1,3);
  // each bin reports its newest member plus min/max over the span.
  EXPECT_EQ(v.at("bins").at(0).at("i1").as_int(), 1);
  EXPECT_EQ(v.at("bins").at(1).at("i0").as_int(), 1);
  EXPECT_GE(v.at("bins").at(1).at("max_benefit_ns").as_int(),
            v.at("bins").at(1).at("min_benefit_ns").as_int());

  // px beyond the ingest count degenerates to one bin per ingest.
  const json::Value wide = json::parse(
      get(svc, "/api/history?workload=synthetic&px=500").body);
  EXPECT_EQ(wide.at("bins").size(), 3u);
}

TEST_F(ExploreTest, RegressionsEndpointReportsDriftedWorkloads) {
  save("a", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 2}));
  save("b", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 2,
                                         .op_spacing_ns = 1001}));
  save("c", testkit::make_synthetic_run({.events = 5'000,
                                         .problem_sites = 6}));
  archive::Archive ar(archive::ArchiveOptions{
      .root = dir_ + "/archive", .config = {}, .ingest_wall_ms = 0});
  for (const char* n : {"a", "b", "c"}) {
    (void)ar.add(dir_ + "/" + n + ".dgtrace");
  }

  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  EXPECT_EQ(get(svc, "/api/regressions?window=-2").status, 400);
  const explore::HttpResponse r = get(svc, "/api/regressions");
  ASSERT_EQ(r.status, 200);
  const json::Value v = json::parse(r.body);
  EXPECT_EQ(v.at("schema").as_string(), "diogenes.regress.v1");
  EXPECT_EQ(v.at("digests").as_int(), 3);
  EXPECT_EQ(v.at("drifted_workloads").as_int(), 1)
      << "the 6-site variant must register as drift: " << r.body;
  EXPECT_GT(v.at("reports").at(0).at("findings").size(), 0u);
}

TEST_F(ExploreTest, FleetEndpointsAnswer404WithoutAnArchive) {
  save("a", testkit::make_synthetic_run({.events = 1'000}));
  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  EXPECT_EQ(get(svc, "/api/history?workload=synthetic").status, 404);
  EXPECT_EQ(get(svc, "/api/regressions").status, 404);
  // /metrics still serves process metrics; the archive gauges are
  // simply absent.
  const explore::HttpResponse m = get(svc, "/metrics");
  EXPECT_EQ(m.status, 200);
  EXPECT_EQ(m.body.find("diogenes_archive_runs"), std::string::npos);
}

TEST_F(ExploreTest, MetricsEndpointSpeaksPrometheusTextFormat) {
  save("a", testkit::make_synthetic_run({.events = 1'000}));
  archive::Archive ar(archive::ArchiveOptions{
      .root = dir_ + "/archive", .config = {}, .ingest_wall_ms = 0});
  (void)ar.add(dir_ + "/a.dgtrace");

  explore::Service svc({.root = dir_, .config = {}, .archive_root = {}});
  (void)get(svc, "/api/runs");  // populate request counters
  const explore::HttpResponse m = get(svc, "/metrics");
  ASSERT_EQ(m.status, 200);
  EXPECT_NE(m.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(m.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(m.body.find("diogenes_archive_runs 1"), std::string::npos)
      << m.body;
  EXPECT_NE(m.body.find("diogenes_archive_workloads 1"), std::string::npos);

  // Every line is a comment or `name[{labels}] value`, names restricted
  // to the exposition alphabet.
  std::size_t pos = 0;
  while (pos < m.body.size()) {
    std::size_t eol = m.body.find('\n', pos);
    if (eol == std::string::npos) eol = m.body.size();
    const std::string line = m.body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_FALSE(name.empty()) << line;
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
    }
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }
}

// --- Filtered dump pushdown -------------------------------------------------

TEST_F(ExploreTest, DumpRangeAndKindFiltersSkipSegmentsAndBlocks) {
  // ~5 segments of 64K rows; ops carry t_start = i * 1000ns, so a narrow
  // late window leaves whole early segments (and most blocks of the
  // segment it lands in) skippable from their stats alone.
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 300'000});

  ffm::DumpOptions opts;
  opts.kind = "op";
  opts.t0 = 200'000'000;
  opts.t1 = 200'064'000;
  opts.max_events = 32;
  ffm::DumpStats stats;
  const std::string out = ffm::render_run_dump(run, opts, &stats);
  EXPECT_GT(stats.shown, 0u);
  EXPECT_LE(stats.shown, 32u);
  EXPECT_GT(stats.segments_skipped, 0u)
      << "range pushdown must skip whole early segments";
  EXPECT_GT(stats.blocks_skipped, 0u)
      << "range pushdown must skip blocks inside partial segments";
  EXPECT_NE(out.find("op"), std::string::npos);

  // A kind that never occurs: everything is skipped, nothing shown.
  ffm::DumpOptions none;
  none.kind = "duplicate_transfer";
  ffm::DumpStats nstats;
  (void)ffm::render_run_dump(run, none, &nstats);
  EXPECT_EQ(nstats.shown, 0u);
  EXPECT_GT(nstats.segments_skipped + nstats.blocks_skipped, 0u);

  EXPECT_THROW((void)ffm::render_run_dump(
                   run, ffm::DumpOptions{.kind = "no_such_kind"}),
               diog::Error);
}

// --- Explanation engine -----------------------------------------------------

TEST_F(ExploreTest, EveryFindingGetsANonEmptyExplanation) {
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 50'000});
  const ffm::AnalysisResult a = ffm::run_analysis(run, {});
  const std::vector<ffm::Finding> fs = ffm::collect_findings(a);
  ASSERT_FALSE(fs.empty()) << "the synthetic run must produce findings";
  const std::vector<explore::Explanation> ex = explore::explain_all(a, fs);
  ASSERT_EQ(ex.size(), fs.size());
  for (const explore::Explanation& e : ex) {
    EXPECT_FALSE(e.pattern.empty());
    EXPECT_FALSE(e.headline.empty());
    EXPECT_FALSE(e.narrative.empty());
    EXPECT_NO_THROW((void)json::parse(e.to_json().dump()));
  }
  const std::string overview = explore::render_explained_overview(a);
  EXPECT_NE(overview.find("why:"), std::string::npos);
}

}  // namespace
}  // namespace diog
