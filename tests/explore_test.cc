// The trace explorer (ISSUE 6): HTTP parsing, the LoD aggregation
// layer's determinism contract, the Service error model over empty and
// torn runs, the viewport byte budget at a million events, the filtered
// dump's predicate pushdown, and the explanation engine's totality.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/diogenes.h"
#include "core/findings.h"
#include "core/report.h"
#include "eventstore/aggregate.h"
#include "eventstore/live_writer.h"
#include "eventstore/run_io.h"
#include "explore/explain.h"
#include "explore/http.h"
#include "explore/service.h"
#include "json/json.h"
#include "parallel/thread_pool.h"
#include "testkit/synth_run.h"

namespace diog {
namespace {

namespace fs = std::filesystem;

class ExploreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_explore_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    saved_threads_ = par::threads_override();
  }
  void TearDown() override {
    par::set_threads(saved_threads_);
    fs::remove_all(dir_);
  }

  std::string save(const std::string& name, const evstore::TraceRun& run) {
    const std::string path = dir_ + "/" + name + ".dgtrace";
    evstore::save_run(path, run, evstore::SaveOptions{.footer_wall_ms = 0});
    return path;
  }

  static explore::HttpResponse get(explore::Service& svc,
                                   const std::string& target) {
    explore::HttpRequest req;
    EXPECT_TRUE(
        explore::parse_request_line("GET " + target + " HTTP/1.1", req))
        << target;
    return svc.handle(req);
  }

  std::string dir_;
  std::size_t saved_threads_ = 0;
};

// --- HTTP layer (no sockets) ------------------------------------------------

TEST(ExploreHttp, UrlDecodeHandlesEscapesAndPassesInvalidOnesThrough) {
  EXPECT_EQ(explore::url_decode("%41%2fb+c"), "A/b c");
  EXPECT_EQ(explore::url_decode("plain"), "plain");
  EXPECT_EQ(explore::url_decode("%zz%4"), "%zz%4");  // malformed: literal
}

TEST(ExploreHttp, ParseRequestLineSplitsPathAndQuery) {
  explore::HttpRequest req;
  ASSERT_TRUE(explore::parse_request_line(
      "GET /api/timeline?t0=10&t1=20&tracks=op%2cpage_fault HTTP/1.1", req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/api/timeline");
  EXPECT_EQ(req.get("tracks"), "op,page_fault");
  EXPECT_EQ(req.get_i64("t0", -1), 10);
  EXPECT_EQ(req.get_i64("t1", -1), 20);
  EXPECT_EQ(req.get_i64("missing", -7), -7);
  EXPECT_EQ(req.get_i64("tracks", -7), -7);  // non-numeric -> fallback

  EXPECT_FALSE(explore::parse_request_line("garbage", req));
  EXPECT_FALSE(explore::parse_request_line("GET /x", req));
}

// --- LoD binning ------------------------------------------------------------

TEST_F(ExploreTest, BinEventsIsIdenticalAtEveryThreadCount) {
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 50'000});
  const evstore::EventStore& store = *run.store;

  auto snapshot = [&store] {
    evstore::Cursor proto(store);
    proto.kind(evstore::EventKind::kOp);
    const evstore::BinnedSpans b =
        evstore::bin_events(store, proto, 0, 50'000'000, 777);
    std::string s = std::to_string(b.matched) + "|" +
                    std::to_string(b.bin_width) + "|" +
                    std::to_string(b.bins);
    for (const evstore::TimeBin& bin : b.data) {
      s += ";" + std::to_string(bin.count) + "," +
           std::to_string(bin.busy_ns) + "," +
           std::to_string(bin.rep.t_start) + "," +
           std::to_string(bin.rep.t_end) + "," +
           std::to_string(bin.rep.op_index);
    }
    return s;
  };

  par::set_threads(1);
  const std::string ref = snapshot();
  for (const std::size_t tc : {2, 8}) {
    par::set_threads(tc);
    EXPECT_EQ(snapshot(), ref) << "threads=" << tc;
  }
  EXPECT_NE(ref.find(";"), std::string::npos);
}

TEST_F(ExploreTest, BinEventsClampsAndHandlesEmptyRanges) {
  const evstore::TraceRun run = testkit::make_synthetic_run({.events = 100});
  evstore::Cursor proto(*run.store);
  const evstore::BinnedSpans huge =
      evstore::bin_events(*run.store, proto, 0, 1'000'000, 1 << 20);
  EXPECT_EQ(huge.bins, evstore::kMaxBins);
  const evstore::BinnedSpans inverted =
      evstore::bin_events(*run.store, proto, 10, 10, 64);
  EXPECT_EQ(inverted.bins, 1u);
  EXPECT_EQ(inverted.matched, 0u);
}

// --- Service endpoints ------------------------------------------------------

TEST_F(ExploreTest, EndpointBodiesAreByteIdenticalAtEveryThreadCount) {
  save("tiny", testkit::make_synthetic_run({.events = 20'000}));
  const std::vector<std::string> targets = {
      "/api/timeline?run=tiny&px=512",
      "/api/timeline?run=tiny&px=64&tracks=op",
      "/api/flame?run=tiny",
      "/api/findings?run=tiny",
      "/api/syncsites?run=tiny",
  };
  std::vector<std::string> ref;
  for (const std::size_t tc : {1, 2, 8}) {
    par::set_threads(tc);
    // A fresh Service per thread count: nothing may answer from a cache
    // warmed under a different thread count.
    explore::Service svc({.root = dir_, .config = {}});
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const explore::HttpResponse r = get(svc, targets[i]);
      EXPECT_EQ(r.status, 200) << targets[i];
      if (tc == 1) {
        ref.push_back(r.body);
      } else {
        EXPECT_EQ(r.body, ref[i]) << targets[i] << " threads=" << tc;
      }
    }
  }
}

TEST_F(ExploreTest, EmptyRunServesEveryEndpointWithoutServerError) {
  evstore::TraceRun empty;
  save("empty", empty);
  explore::Service svc({.root = dir_, .config = {}});
  for (const std::string target :
       {"/api/runs", "/api/stat?run=empty", "/api/timeline?run=empty",
        "/api/flame?run=empty", "/api/findings?run=empty",
        "/api/syncsites?run=empty", "/", "/healthz"}) {
    const explore::HttpResponse r = get(svc, target);
    EXPECT_LT(r.status, 500) << target;
    if (r.content_type == "application/json") {
      EXPECT_NO_THROW((void)json::parse(r.body)) << target;
    }
  }
}

TEST_F(ExploreTest, TornLiveRunServesTheReadablePrefix) {
  const std::string path = dir_ + "/live.dgtrace";
  {
    // A writer that checkpoints every 1000 events and never finishes:
    // a live file with several complete chunks. Tearing a few bytes off
    // the end leaves the last chunk torn and the rest a clean prefix.
    const evstore::TraceRun src =
        testkit::make_synthetic_run({.events = 5'000});
    const evstore::EventStore& s = *src.store;
    evstore::TraceRun dst;
    dst.meta = src.meta;
    evstore::LiveRunWriter w(
        path, evstore::LiveRunWriter::Options{.fsync_checkpoints = false});
    for (std::uint64_t i = 0; i < s.size(); ++i) {
      evstore::Event e = s.event(i);
      e.stack = dst.store->intern_stack(s.stack_trace(e.stack));
      e.aux_stack = dst.store->intern_stack(s.stack_trace(e.aux_stack));
      e.name = e.name == evstore::kNoName
                   ? evstore::kNoName
                   : dst.store->intern_name(s.name(e.name));
      dst.store->append(e);
      if ((i + 1) % 1000 == 0) w.checkpoint(dst);
    }
  }
  fs::resize_file(path, fs::file_size(path) - 37);

  explore::Service svc({.root = dir_, .config = {}});
  const explore::HttpResponse runs = get(svc, "/api/runs");
  ASSERT_EQ(runs.status, 200);
  EXPECT_NE(runs.body.find("in progress"), std::string::npos)
      << "live/torn state must be surfaced: " << runs.body;
  for (const std::string target :
       {"/api/stat?run=live", "/api/timeline?run=live", "/api/flame?run=live",
        "/api/syncsites?run=live"}) {
    const explore::HttpResponse r = get(svc, target);
    EXPECT_LT(r.status, 500) << target;
    EXPECT_NO_THROW((void)json::parse(r.body)) << target;
  }
  const json::Value tl = json::parse(get(svc, "/api/timeline?run=live").body);
  EXPECT_GT(tl.at("matched").as_int(), 0)
      << "the clean prefix must still be served";
}

TEST_F(ExploreTest, ErrorModelIs404ForUnknownAnd400ForBadParams) {
  save("ok", testkit::make_synthetic_run({.events = 1'000}));
  explore::Service svc({.root = dir_, .config = {}});
  EXPECT_EQ(get(svc, "/api/stat?run=nope").status, 404);
  EXPECT_EQ(get(svc, "/api/timeline?run=../../etc/passwd").status, 404);
  EXPECT_EQ(get(svc, "/api/timeline?run=ok&tracks=flying_carpet").status,
            400);
  EXPECT_EQ(get(svc, "/api/timeline?run=ok&t0=9&t1=3").status, 400);
  EXPECT_EQ(get(svc, "/nope").status, 404);
  EXPECT_EQ(get(svc, "/healthz").status, 200);
}

TEST_F(ExploreTest, MillionEventViewportStaysUnderTheByteBudget) {
  save("big", testkit::make_synthetic_run({.events = 1'000'000}));
  explore::Service svc({.root = dir_, .config = {}});
  for (const std::string target :
       {"/api/timeline?run=big&px=1024",
        "/api/timeline?run=big&px=2048&tracks=op,internal_span"}) {
    const explore::HttpResponse r = get(svc, target);
    ASSERT_EQ(r.status, 200) << target;
    EXPECT_LE(r.body.size(), std::size_t{512} * 1024) << target;
    const json::Value v = json::parse(r.body);
    EXPECT_GT(v.at("matched").as_int(), 900'000) << target;
  }
}

// --- Filtered dump pushdown -------------------------------------------------

TEST_F(ExploreTest, DumpRangeAndKindFiltersSkipSegmentsAndBlocks) {
  // ~5 segments of 64K rows; ops carry t_start = i * 1000ns, so a narrow
  // late window leaves whole early segments (and most blocks of the
  // segment it lands in) skippable from their stats alone.
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 300'000});

  ffm::DumpOptions opts;
  opts.kind = "op";
  opts.t0 = 200'000'000;
  opts.t1 = 200'064'000;
  opts.max_events = 32;
  ffm::DumpStats stats;
  const std::string out = ffm::render_run_dump(run, opts, &stats);
  EXPECT_GT(stats.shown, 0u);
  EXPECT_LE(stats.shown, 32u);
  EXPECT_GT(stats.segments_skipped, 0u)
      << "range pushdown must skip whole early segments";
  EXPECT_GT(stats.blocks_skipped, 0u)
      << "range pushdown must skip blocks inside partial segments";
  EXPECT_NE(out.find("op"), std::string::npos);

  // A kind that never occurs: everything is skipped, nothing shown.
  ffm::DumpOptions none;
  none.kind = "duplicate_transfer";
  ffm::DumpStats nstats;
  (void)ffm::render_run_dump(run, none, &nstats);
  EXPECT_EQ(nstats.shown, 0u);
  EXPECT_GT(nstats.segments_skipped + nstats.blocks_skipped, 0u);

  EXPECT_THROW((void)ffm::render_run_dump(
                   run, ffm::DumpOptions{.kind = "no_such_kind"}),
               diog::Error);
}

// --- Explanation engine -----------------------------------------------------

TEST_F(ExploreTest, EveryFindingGetsANonEmptyExplanation) {
  const evstore::TraceRun run =
      testkit::make_synthetic_run({.events = 50'000});
  const ffm::AnalysisResult a = ffm::run_analysis(run, {});
  const std::vector<ffm::Finding> fs = ffm::collect_findings(a);
  ASSERT_FALSE(fs.empty()) << "the synthetic run must produce findings";
  const std::vector<explore::Explanation> ex = explore::explain_all(a, fs);
  ASSERT_EQ(ex.size(), fs.size());
  for (const explore::Explanation& e : ex) {
    EXPECT_FALSE(e.pattern.empty());
    EXPECT_FALSE(e.headline.empty());
    EXPECT_FALSE(e.narrative.empty());
    EXPECT_NO_THROW((void)json::parse(e.to_json().dump()));
  }
  const std::string overview = explore::render_explained_overview(a);
  EXPECT_NE(overview.find("why:"), std::string::npos);
}

}  // namespace
}  // namespace diog
