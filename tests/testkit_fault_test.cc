// Deterministic fault injection (ISSUE 4, leg 2): every injection site
// wired through the persistence and runtime layers must demonstrably
// fire, and every injected fault must surface as a cleanly classified
// error (clean / torn / corrupt) or a consistent degraded state — never
// UB, never a silently wrong analysis. The torn-footer tests are the
// checkpointed-prefix guarantee: whatever a crash leaves behind, every
// previously checkpointed chunk stays readable.
#include <gtest/gtest.h>

#include <filesystem>
#include <new>
#include <string>

#include "core/diogenes.h"
#include "eventstore/event_store.h"
#include "eventstore/live_writer.h"
#include "eventstore/run_io.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "support/error.h"
#include "testkit/dgtrace_builder.h"
#include "testkit/fault_plan.h"

namespace diog::testkit {
namespace {

namespace fs = std::filesystem;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_fault_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/run.dgtrace";
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A store with `n` well-formed events; enough variety for the writer
  // to serialize dictionaries and several columns.
  static evstore::TraceRun sample_run(std::uint64_t n) {
    evstore::TraceRun run;
    run.meta.workload = "fault_wl";
    run.meta.s1_exec = ms(10);
    run.meta.s2_exec = ms(10);
    run.meta.s3_exec = ms(10);
    run.meta.s4_exec = ms(10);
    for (std::uint64_t i = 0; i < n; ++i) {
      evstore::Event e;
      e.kind = static_cast<evstore::EventKind>(i % evstore::kEventKindCount);
      e.op_index = i;
      e.t_start = static_cast<std::int64_t>(i * 2);
      e.t_end = e.t_start + 1;
      e.value = i;
      run.store->append(e);
    }
    return run;
  }

  static FaultSpec spec(const char* site, FaultAction action,
                        std::int64_t magnitude = 0) {
    FaultSpec s;
    s.site = site;
    s.action = action;
    s.magnitude = magnitude;
    return s;
  }

  std::string dir_;
  std::string path_;
};

// --- The plan itself ---------------------------------------------------------

TEST_F(FaultTest, NoPlanInstalledMeansNoFiring) {
  EXPECT_FALSE(fault_plan_active());
  EXPECT_EQ(fault_at("live_writer.fsync"), nullptr);
}

TEST_F(FaultTest, AfterAndMaxFiresGateFiring) {
  FaultPlan plan(7);
  FaultSpec s = spec("site.x", FaultAction::kFail);
  s.after = 2;
  s.max_fires = 3;
  plan.add(s);
  FaultScope scope(plan);
  EXPECT_TRUE(fault_plan_active());

  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault_at("site.x") != nullptr) ++fired;
  }
  EXPECT_EQ(fired, 3);  // hits 3, 4, 5 fire; then disarmed
  EXPECT_EQ(plan.hits("site.x"), 10u);
  EXPECT_EQ(plan.fires("site.x"), 3u);
  EXPECT_EQ(plan.total_fires(), 3u);
  EXPECT_EQ(plan.hits("site.never"), 0u);
}

TEST_F(FaultTest, ProbabilityIsSeededAndBounded) {
  FaultPlan plan(42);
  FaultSpec s = spec("site.p", FaultAction::kFail);
  s.probability = 0.5;
  plan.add(s);
  FaultScope scope(plan);
  for (int i = 0; i < 1000; ++i) (void)fault_at("site.p");
  EXPECT_EQ(plan.hits("site.p"), 1000u);
  // Seeded coin: not all, not none, and stable enough to bound loosely.
  EXPECT_GT(plan.fires("site.p"), 300u);
  EXPECT_LT(plan.fires("site.p"), 700u);
}

// --- run_io read-side sites --------------------------------------------------

TEST_F(FaultTest, MmapFaultSurfacesAsError) {
  write_file(path_, make_minimal_run(4));
  FaultPlan plan(1);
  plan.add(spec("run_io.mmap", FaultAction::kFail));
  FaultScope scope(plan);
  try {
    (void)evstore::open_run(path_, evstore::ReadMode::kMmap);
    FAIL() << "injected mmap failure did not surface";
  } catch (const Error&) {
    // clean classified error — the contract
  }
  EXPECT_GE(plan.fires("run_io.mmap"), 1u);
}

TEST_F(FaultTest, ReadBufferAllocFaultSurfacesCleanly) {
  write_file(path_, make_minimal_run(4));
  {
    FaultPlan plan(1);
    plan.add(spec("run_io.read.alloc", FaultAction::kFail));
    FaultScope scope(plan);
    EXPECT_THROW((void)evstore::open_run(path_, evstore::ReadMode::kStream),
                 Error);
    EXPECT_GE(plan.fires("run_io.read.alloc"), 1u);
  }
  {
    FaultPlan plan(1);
    plan.add(spec("run_io.read.alloc", FaultAction::kBadAlloc));
    FaultScope scope(plan);
    EXPECT_THROW((void)evstore::open_run(path_, evstore::ReadMode::kStream),
                 std::bad_alloc);
  }
  // And with no plan the same file loads fine.
  EXPECT_EQ(evstore::open_run(path_, evstore::ReadMode::kStream).store->size(),
            4u);
}

// --- live_writer sites -------------------------------------------------------

TEST_F(FaultTest, WriterOpenFaultSurfacesAsError) {
  FaultPlan plan(1);
  plan.add(spec("live_writer.open", FaultAction::kFail));
  FaultScope scope(plan);
  EXPECT_THROW(evstore::LiveRunWriter w(path_), Error);
  EXPECT_GE(plan.fires("live_writer.open"), 1u);
}

TEST_F(FaultTest, FsyncFaultFailsCheckpointButLeavesFileReadable) {
  const evstore::TraceRun run = sample_run(32);
  evstore::LiveRunWriter::Options opts;
  opts.fsync_checkpoints = true;
  {
    evstore::LiveRunWriter w(path_, opts);
    FaultPlan plan(1);
    plan.add(spec("live_writer.fsync", FaultAction::kFail));
    FaultScope scope(plan);
    EXPECT_THROW(w.checkpoint(run, /*force=*/true), Error);
    EXPECT_GE(plan.fires("live_writer.fsync"), 1u);
  }
  // The destructor closes without finalizing; whatever reached the file
  // must load as a classified state, not corrupt.
  evstore::RunFileInfo info;
  const evstore::TraceRun back =
      evstore::open_run(path_, evstore::ReadMode::kAuto, &info);
  EXPECT_FALSE(info.finalized);
  EXPECT_LE(back.store->size(), 32u);
}

TEST_F(FaultTest, ShortChunkWriteLeavesPriorCheckpointReadable) {
  const evstore::TraceRun run = sample_run(64);
  evstore::LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  evstore::LiveRunWriter w(path_, opts);
  w.checkpoint(run, /*force=*/true);  // checkpoint 1: clean, 64 events

  // More events, then a chunk write that tears after 7 bytes.
  evstore::TraceRun more = sample_run(64);
  for (std::uint64_t i = 0; i < 16; ++i) {
    evstore::Event e;
    e.kind = evstore::EventKind::kOp;
    e.op_index = 64 + i;
    more.store->append(e);
  }
  {
    FaultPlan plan(1);
    plan.add(spec("live_writer.write.chunk", FaultAction::kShortWrite, 7));
    FaultScope scope(plan);
    EXPECT_THROW(w.checkpoint(more, /*force=*/true), Error);
    EXPECT_GE(plan.fires("live_writer.write.chunk"), 1u);
  }

  // Checkpointed-prefix guarantee: chunk 1 stays fully readable; the
  // torn second chunk is classified as an incomplete tail, not an error.
  evstore::RunFileInfo info;
  const evstore::TraceRun back =
      evstore::open_run(path_, evstore::ReadMode::kAuto, &info);
  EXPECT_FALSE(info.clean);
  EXPECT_EQ(info.chunks, 1u);
  EXPECT_EQ(back.store->size(), 64u);
}

// Satellite 3, ordering A: the crash lands after the chunk is flushed
// but before a single footer byte is rewritten.
TEST_F(FaultTest, TornFooterBeforeWriteKeepsAllChunksReadable) {
  const evstore::TraceRun run = sample_run(48);
  evstore::LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  evstore::LiveRunWriter w(path_, opts);
  w.checkpoint(run, /*force=*/true);

  evstore::TraceRun more = sample_run(48);
  for (std::uint64_t i = 0; i < 16; ++i) {
    evstore::Event e;
    e.kind = evstore::EventKind::kSyncSite;
    e.op_index = 48 + i;
    more.store->append(e);
  }
  {
    FaultPlan plan(1);
    plan.add(spec("live_writer.footer.before", FaultAction::kFail));
    FaultScope scope(plan);
    EXPECT_THROW(w.checkpoint(more, /*force=*/true), Error);
    EXPECT_GE(plan.fires("live_writer.footer.before"), 1u);
  }

  evstore::RunFileInfo info;
  const evstore::TraceRun back =
      evstore::open_run(path_, evstore::ReadMode::kAuto, &info);
  // Both chunks were flushed; only the footer is missing, so the file
  // reads as a torn (non-clean) prefix containing every event.
  EXPECT_FALSE(info.clean);
  EXPECT_EQ(info.chunks, 2u);
  EXPECT_EQ(back.store->size(), 64u);
  EXPECT_EQ(info.dropped_before_checkpoint, 0u);
}

// Satellite 3, ordering B: the crash lands mid footer write — a few
// footer bytes reach the disk, then nothing.
TEST_F(FaultTest, TornFooterMidWriteKeepsAllChunksReadable) {
  const evstore::TraceRun run = sample_run(48);
  evstore::LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  evstore::LiveRunWriter w(path_, opts);
  w.checkpoint(run, /*force=*/true);

  evstore::TraceRun more = sample_run(48);
  for (std::uint64_t i = 0; i < 16; ++i) {
    evstore::Event e;
    e.kind = evstore::EventKind::kDuplicateTransfer;
    e.op_index = 48 + i;
    more.store->append(e);
  }
  {
    FaultPlan plan(1);
    plan.add(spec("live_writer.footer.torn", FaultAction::kShortWrite, 10));
    FaultScope scope(plan);
    EXPECT_THROW(w.checkpoint(more, /*force=*/true), Error);
    EXPECT_GE(plan.fires("live_writer.footer.torn"), 1u);
  }

  evstore::RunFileInfo info;
  const evstore::TraceRun back =
      evstore::open_run(path_, evstore::ReadMode::kAuto, &info);
  EXPECT_FALSE(info.clean);
  EXPECT_EQ(info.chunks, 2u);
  EXPECT_EQ(back.store->size(), 64u);
}

// --- event_store site --------------------------------------------------------

TEST_F(FaultTest, SegmentAllocFaultLeavesStoreConsistent) {
  evstore::EventStore store;
  evstore::Event e;
  e.kind = evstore::EventKind::kOp;
  {
    FaultPlan plan(1);
    FaultSpec s = spec("event_store.segment_alloc", FaultAction::kBadAlloc);
    s.max_fires = 1;
    plan.add(s);
    FaultScope scope(plan);
    EXPECT_THROW(store.append(e), std::bad_alloc);
    EXPECT_EQ(plan.fires("event_store.segment_alloc"), 1u);
  }
  // The failed append changed nothing: the store still works, columns
  // and counters agree.
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.count_of(evstore::EventKind::kOp), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) store.append(e);
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.count_of(evstore::EventKind::kOp), 100u);
  EXPECT_EQ(store.event(99).kind, evstore::EventKind::kOp);
}

TEST_F(FaultTest, SegmentAllocFailActionThrowsError) {
  evstore::EventStore store;
  evstore::Event e;
  e.kind = evstore::EventKind::kOp;
  FaultPlan plan(1);
  FaultSpec s = spec("event_store.segment_alloc", FaultAction::kFail);
  s.max_fires = 1;
  plan.add(s);
  FaultScope scope(plan);
  EXPECT_THROW(store.append(e), Error);
  EXPECT_EQ(store.size(), 0u);
}

// --- gpusim clock-skew site --------------------------------------------------

TEST_F(FaultTest, ClockSkewAdvancesTimeAndFires) {
  gpusim::Runtime rt{gpusim::DeviceConfig{}};
  gpusim::RuntimeScope scope_rt(rt);
  FaultPlan plan(1);
  FaultSpec s = spec("gpusim.clock.skew", FaultAction::kClockSkew, 5000);
  s.max_fires = 3;
  plan.add(s);
  FaultScope scope(plan);

  void* dev = nullptr;
  ASSERT_EQ(gpusim::cudaMalloc(&dev, 4096), gpusim::cudaError_t::cudaSuccess);
  ASSERT_EQ(gpusim::cudaFree(dev), gpusim::cudaError_t::cudaSuccess);
  (void)gpusim::cudaDeviceSynchronize();
  (void)gpusim::cudaDeviceSynchronize();

  EXPECT_EQ(plan.fires("gpusim.clock.skew"), 3u);
  // Skew is absorbed as forward time, never a negative interval.
  EXPECT_GE(rt.clock().now().count(), 3 * 5000);
}

// End to end: a skewed collection still produces a sane analysis — the
// benefit stays within [0, wall], which is the "never a silently wrong
// analysis" half of the contract.
TEST_F(FaultTest, ClockSkewedPipelineStillAnalyzesSanely) {
  auto out = std::make_shared<gpusim::HostBuffer<float>>(1024);
  ffm::Workload w;
  w.name = "skewed_wl";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    DIOG_APP_FRAME("skew_main", "skew.cu", 1);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    for (int i = 0; i < 4; ++i) {
      gpusim::KernelDesc k;
      k.name = "k";
      k.duration = ms(2);
      (void)gpusim::cudaLaunchKernel(k);
      (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                               hooks::MemcpyKind::kDeviceToHost);
    }
    (void)gpusim::cudaFree(dev);
  };

  FaultPlan plan(3);
  FaultSpec s = spec("gpusim.clock.skew", FaultAction::kClockSkew, 20'000);
  s.probability = 0.25;
  plan.add(s);
  FaultScope scope(plan);

  ffm::Diogenes tool(w, ffm::ToolConfig{});
  const ffm::AnalysisResult r = tool.analyze();
  EXPECT_GT(plan.fires("gpusim.clock.skew"), 0u);

  const Duration wall = std::max(
      {r.run.meta.s1_exec, r.run.meta.s2_exec, r.run.meta.s3_exec,
       r.run.meta.s4_exec});
  EXPECT_GE(r.benefit.total.count(), 0);
  EXPECT_LE(r.benefit.total.count(), wall.count());
  for (const auto& n : r.benefit.per_node) {
    EXPECT_GE(n.benefit.count(), 0);
    EXPECT_LE(n.benefit.count(), wall.count());
  }
}

}  // namespace
}  // namespace diog::testkit
