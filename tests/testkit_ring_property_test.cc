// Ring-retention drop counters under randomized mixed-kind append
// storms (ISSUE 4, satellite 4). The exactness contract: for every
// event kind, resident + dropped == total appended — no event is ever
// double-counted or lost by whole-segment eviction, regardless of the
// retention policy or the kind mix.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "eventstore/event_store.h"
#include "support/rng.h"

namespace diog::evstore {
namespace {

struct StormResult {
  std::uint64_t total = 0;
  std::array<std::uint64_t, kEventKindCount> appended{};
};

// Appends `total` events with seeded random kinds into `store`.
StormResult storm(EventStore& store, Rng& rng, std::uint64_t total) {
  StormResult r;
  r.total = total;
  for (std::uint64_t i = 0; i < total; ++i) {
    Event e;
    const auto k = static_cast<std::size_t>(rng.next_below(kEventKindCount));
    e.kind = static_cast<EventKind>(k);
    e.op_index = i;
    e.t_start = static_cast<std::int64_t>(i);
    e.t_end = e.t_start + 1;
    store.append(e);
    ++r.appended[k];
  }
  return r;
}

void check_counters(const EventStore& store, const StormResult& r) {
  // Aggregate identities.
  EXPECT_EQ(store.size() + store.dropped_events(), r.total);
  EXPECT_EQ(store.total_appended(), r.total);

  // Per-kind: count_of is the monotonic appended total; the resident
  // window (scanned event by event) plus the per-kind drop counter must
  // reconstruct it exactly.
  std::array<std::uint64_t, kEventKindCount> resident{};
  for (std::uint64_t i = 0; i < store.size(); ++i) {
    ++resident[static_cast<std::size_t>(store.event(i).kind)];
  }
  std::uint64_t dropped_sum = 0;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_EQ(store.count_of(kind), r.appended[k]) << "kind " << k;
    EXPECT_EQ(resident[k] + store.dropped_of(kind), r.appended[k])
        << "kind " << k;
    dropped_sum += store.dropped_of(kind);
  }
  EXPECT_EQ(dropped_sum, store.dropped_events());
}

TEST(RingProperty, RandomizedStormsKeepPerKindCountersExact) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    EventStore store;
    RetentionPolicy p;
    if (rng.next_bool(0.5)) {
      p.max_events = 1 + rng.next_below(3 * kSegmentRows);
    } else {
      p.max_bytes = (1u << 16) + rng.next_below(8u << 20);
    }
    store.set_retention(p);
    const std::uint64_t total = 1 + rng.next_below(2 * kSegmentRows + 4096);
    const StormResult r = storm(store, rng, total);
    SCOPED_TRACE("seed " + std::to_string(seed) + " total " +
                 std::to_string(total));
    check_counters(store, r);
    // Eviction is whole-segment: the resident window stays aligned with
    // the fill position of the current segment.
    EXPECT_EQ(store.size() % kSegmentRows, store.total_appended() %
                                               kSegmentRows);
  }
}

TEST(RingProperty, UnboundedStoreNeverDrops) {
  Rng rng(99);
  EventStore store;  // no retention set
  const StormResult r = storm(store, rng, kSegmentRows + 777);
  check_counters(store, r);
  EXPECT_EQ(store.dropped_events(), 0u);
  EXPECT_EQ(store.size(), r.total);
}

TEST(RingProperty, TightEventBoundEvictsAggressively) {
  Rng rng(7);
  EventStore store;
  RetentionPolicy p;
  p.max_events = 1;  // tighter than a segment: one segment retained
  store.set_retention(p);
  const StormResult r = storm(store, rng, 3 * kSegmentRows + 5);
  check_counters(store, r);
  // At least two whole segments must have been evicted.
  EXPECT_GE(store.dropped_events(), 2 * kSegmentRows);
  EXPECT_GT(store.evicted_segments(), 0u);
}

TEST(RingProperty, SingleKindStormAttributesEveryDropToThatKind) {
  EventStore store;
  RetentionPolicy p;
  p.max_events = kSegmentRows;
  store.set_retention(p);
  const std::uint64_t total = 2 * kSegmentRows + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    Event e;
    e.kind = EventKind::kPageFault;
    e.op_index = i;
    store.append(e);
  }
  EXPECT_EQ(store.count_of(EventKind::kPageFault), total);
  EXPECT_EQ(store.dropped_of(EventKind::kPageFault), store.dropped_events());
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    if (static_cast<EventKind>(k) == EventKind::kPageFault) continue;
    EXPECT_EQ(store.dropped_of(static_cast<EventKind>(k)), 0u);
    EXPECT_EQ(store.count_of(static_cast<EventKind>(k)), 0u);
  }
}

}  // namespace
}  // namespace diog::evstore
