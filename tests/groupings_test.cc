#include <gtest/gtest.h>

#include "core/groupings.h"

#include "support/error.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using hooks::Fn;

trace::StackTrace stack_at(const std::string& fn, const std::string& file,
                           int line) {
  std::vector<const trace::Frame*> frames{
      trace::FrameTable::instance().intern("main", "app.cc", 1),
      trace::FrameTable::instance().intern(fn, file, line)};
  return trace::StackTrace(std::move(frames));
}

Node work(Duration d) {
  Node n;
  n.type = NType::kCWork;
  n.duration = d;
  return n;
}

Node problem_wait(Duration d, Fn api, const trace::StackTrace& st,
                  std::int64_t op_index,
                  ProblemType p = ProblemType::kUnnecessarySync) {
  Node n;
  n.type = NType::kCWait;
  n.duration = d;
  n.problem = p;
  n.api = api;
  n.stack = st;
  n.op_index = op_index;
  return n;
}

Node healthy_wait(Duration d = Duration{0}) {
  Node n;
  n.type = NType::kCWait;
  n.duration = d;
  return n;
}

ExecutionGraph make_graph(std::vector<Node> nodes) {
  Duration total{0};
  TimePoint t{0};
  for (Node& n : nodes) {
    n.stime = t;
    t += n.duration;
    total += n.duration;
  }
  return ExecutionGraph(std::move(nodes), total);
}

// Two loop iterations, each: [free@856 problem, work, free@870 problem,
// work] then a necessary sync.
ExecutionGraph two_iteration_graph() {
  const auto st1 = stack_at("update", "als.cpp", 856);
  const auto st2 = stack_at("update", "als.cpp", 870);
  std::vector<Node> nodes;
  std::int64_t op = 0;
  for (int iter = 0; iter < 2; ++iter) {
    nodes.push_back(problem_wait(ms(4), Fn::kCudaFree, st1, op++));
    nodes.push_back(work(ms(10)));
    nodes.push_back(problem_wait(ms(2), Fn::kCudaFree, st2, op++));
    nodes.push_back(work(ms(10)));
    nodes.push_back(healthy_wait(ms(1)));  // necessary: ends the sequence
    ++op;
  }
  nodes.push_back(healthy_wait());
  return make_graph(std::move(nodes));
}

// --- Single-point grouping -----------------------------------------------------

TEST(SinglePoint, GroupsIdenticalStacksAcrossIterations) {
  const ExecutionGraph g = two_iteration_graph();
  const auto groups = single_point_groups(g);
  ASSERT_EQ(groups.size(), 2u);  // one per source line
  // Each group holds both iterations' instances.
  for (const Group& grp : groups) {
    EXPECT_EQ(grp.nodes.size(), 2u);
    EXPECT_EQ(grp.kind, Group::Kind::kSinglePoint);
    EXPECT_EQ(grp.sync_issues, 2u);
  }
  // Sorted by benefit: the 4 ms line first.
  EXPECT_EQ(groups[0].benefit, ms(8));
  EXPECT_EQ(groups[1].benefit, ms(4));
  EXPECT_NE(groups[0].title.find("line 856"), std::string::npos);
}

TEST(SinglePoint, DifferentLinesStayApart) {
  const ExecutionGraph g = two_iteration_graph();
  const auto groups = single_point_groups(g);
  EXPECT_NE(groups[0].title, groups[1].title);
}

// --- Folded grouping ---------------------------------------------------------------

TEST(FoldedApi, FoldsOnApiFunction) {
  const ExecutionGraph g = two_iteration_graph();
  const auto folds = folded_api_groups(g);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].title, "Fold on cudaFree");
  EXPECT_EQ(folds[0].nodes.size(), 4u);
  EXPECT_EQ(folds[0].benefit, ms(12));  // all four waits recoverable
}

TEST(FoldedApi, ExpansionFoldsTemplateInstantiations) {
  // Template instances <float> and <double> of one function must fold
  // into a single expansion entry (Figure 7).
  const auto stf = stack_at("storage<float>::deallocate", "t.h", 31);
  const auto std_ = stack_at("storage<double>::deallocate", "t.h", 31);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaFree, stf, 0),
      work(ms(10)),
      problem_wait(ms(5), Fn::kCudaFree, std_, 1),
      work(ms(10)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  const auto folds = folded_api_groups(g);
  ASSERT_EQ(folds.size(), 1u);
  ASSERT_EQ(folds[0].expansion.size(), 1u);
  EXPECT_EQ(folds[0].expansion[0].folded_name, "storage<...>::deallocate");
  EXPECT_EQ(folds[0].expansion[0].member_count, 2u);
  EXPECT_EQ(folds[0].expansion[0].benefit, ms(8));
  // cudaFree's hidden sync is removable only conditionally.
  EXPECT_TRUE(folds[0].expansion[0].conditionally_unnecessary);
}

TEST(FoldedApi, ExplicitSyncIsNotConditional) {
  const auto st = stack_at("solve", "m.cc", 10);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaDeviceSynchronize, st, 0),
      work(ms(10)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  const auto folds = folded_api_groups(g);
  ASSERT_EQ(folds.size(), 1u);
  ASSERT_EQ(folds[0].expansion.size(), 1u);
  EXPECT_FALSE(folds[0].expansion[0].conditionally_unnecessary);
}

TEST(FoldedApi, DistinctApisDistinctFolds) {
  const auto st = stack_at("f", "m.cc", 10);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaFree, st, 0),
      work(ms(5)),
      problem_wait(ms(2), Fn::kCudaMemset, st, 1),
      work(ms(5)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  const auto folds = folded_api_groups(g);
  EXPECT_EQ(folds.size(), 2u);
}

// --- Sequence grouping ----------------------------------------------------------------

TEST(Sequences, NecessarySyncEndsARun) {
  const ExecutionGraph g = two_iteration_graph();
  const auto seqs = sequence_groups(g);
  // The two iterations have identical signatures: merged into ONE
  // logical sequence with two instances.
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].instances.size(), 2u);
  EXPECT_EQ(seqs[0].nodes.size(), 2u);       // first instance's members
  EXPECT_EQ(seqs[0].sync_issues, 2u);        // per instance (Figure 6 style)
  EXPECT_EQ(seqs[0].benefit, ms(12));        // union estimate
  EXPECT_NE(seqs[0].title.find("Sequence starting at call"),
            std::string::npos);
}

TEST(Sequences, MinMembersFiltersSingletons) {
  const auto st = stack_at("f", "m.cc", 1);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaFree, st, 0),
      work(ms(5)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  EXPECT_TRUE(sequence_groups(g, {}, 2).empty());
  EXPECT_EQ(sequence_groups(g, {}, 1).size(), 1u);
}

TEST(Sequences, HealthyWorkDoesNotBreakARun) {
  const auto st1 = stack_at("f", "m.cc", 1);
  const auto st2 = stack_at("f", "m.cc", 2);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaFree, st1, 0),
      work(ms(5)),  // plain work inside the run
      problem_wait(ms(3), Fn::kCudaFree, st2, 1),
      work(ms(5)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  const auto seqs = sequence_groups(g);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].nodes.size(), 2u);
}

TEST(Sequences, DifferentSignaturesStaySeparate) {
  const auto st1 = stack_at("f", "m.cc", 1);
  const auto st2 = stack_at("g", "m.cc", 50);
  std::vector<Node> nodes{
      problem_wait(ms(3), Fn::kCudaFree, st1, 0),
      problem_wait(ms(3), Fn::kCudaFree, st1, 1),
      work(ms(5)),
      healthy_wait(ms(1)),
      problem_wait(ms(3), Fn::kCudaMemset, st2, 2),
      problem_wait(ms(3), Fn::kCudaMemset, st2, 3),
      work(ms(5)),
      healthy_wait(),
  };
  const ExecutionGraph g = make_graph(std::move(nodes));
  EXPECT_EQ(sequence_groups(g).size(), 2u);
}

// --- Sequence entries & subsequence ------------------------------------------------------

TEST(SequenceEntries, PerOpDisplayWithDescriptions) {
  const ExecutionGraph g = two_iteration_graph();
  const auto seqs = sequence_groups(g);
  ASSERT_EQ(seqs.size(), 1u);
  const auto entries = sequence_entries(g, seqs[0]);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].ordinal, 1u);
  EXPECT_EQ(entries[0].description, "cudaFree in als.cpp at line 856");
  EXPECT_EQ(entries[1].description, "cudaFree in als.cpp at line 870");
}

TEST(SequenceEntries, TransferAndSyncOfOneCallCollapse) {
  const auto st = stack_at("upload", "als.cpp", 738);
  Node l;
  l.type = NType::kCLaunch;
  l.duration = ms(1);
  l.problem = ProblemType::kUnnecessaryTransfer;
  l.api = Fn::kCudaMemcpy;
  l.stack = st;
  l.op_index = 5;
  Node w = problem_wait(ms(2), Fn::kCudaMemcpy, st, 5);
  std::vector<Node> nodes{l, w, work(ms(3)), healthy_wait()};
  const ExecutionGraph g = make_graph(std::move(nodes));
  const auto seqs = sequence_groups(g, {}, 1);
  ASSERT_EQ(seqs.size(), 1u);
  const auto entries = sequence_entries(g, seqs[0]);
  ASSERT_EQ(entries.size(), 1u);  // one display entry for the call
  EXPECT_EQ(seqs[0].sync_issues, 1u);
  EXPECT_EQ(seqs[0].transfer_issues, 1u);
}

TEST(Subsequence, SliceEstimatesSubset) {
  const ExecutionGraph g = two_iteration_graph();
  const auto seqs = sequence_groups(g);
  ASSERT_EQ(seqs.size(), 1u);

  // Entry 2 alone (the 2 ms free at line 870) across both instances.
  const Group sub = subsequence(g, seqs[0], 2, 2);
  EXPECT_EQ(sub.kind, Group::Kind::kSubsequence);
  EXPECT_EQ(sub.benefit, ms(4));    // 2 ms x 2 instances
  EXPECT_EQ(sub.sync_issues, 1u);   // per instance (Figure 6 style)
  EXPECT_EQ(sub.instance_count(), 2u);

  // The full slice reproduces the sequence estimate.
  const Group all = subsequence(g, seqs[0], 1, 2);
  EXPECT_EQ(all.benefit, seqs[0].benefit);
}

TEST(Subsequence, BoundsValidated) {
  const ExecutionGraph g = two_iteration_graph();
  const auto seqs = sequence_groups(g);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_THROW((void)subsequence(g, seqs[0], 0, 1), Error);
  EXPECT_THROW((void)subsequence(g, seqs[0], 2, 1), Error);
  EXPECT_THROW((void)subsequence(g, seqs[0], 1, 3), Error);
}

TEST(GroupJson, SerializesKindTitleAndExpansion) {
  const ExecutionGraph g = two_iteration_graph();
  const auto folds = folded_api_groups(g);
  ASSERT_FALSE(folds.empty());
  const json::Value v = folds[0].to_json();
  EXPECT_EQ(v.at("kind").as_string(), "folded_function");
  EXPECT_EQ(v.at("title").as_string(), "Fold on cudaFree");
  EXPECT_GT(v.at("benefit_ns").as_int(), 0);
  EXPECT_TRUE(v.contains("expansion"));
}

}  // namespace
}  // namespace diog::ffm
