#include <gtest/gtest.h>

#include "core/benefit.h"

#include "support/error.h"
#include "support/rng.h"

namespace diog::ffm {
namespace {

Node work(Duration d) {
  Node n;
  n.type = NType::kCWork;
  n.duration = d;
  return n;
}

Node launch(Duration d, ProblemType p = ProblemType::kNone) {
  Node n;
  n.type = NType::kCLaunch;
  n.duration = d;
  n.problem = p;
  return n;
}

Node wait(Duration d, ProblemType p = ProblemType::kNone,
          Duration first_use = Duration{0}) {
  Node n;
  n.type = NType::kCWait;
  n.duration = d;
  n.problem = p;
  n.first_use_time = first_use;
  return n;
}

ExecutionGraph make_graph(std::vector<Node> nodes) {
  Duration total{0};
  TimePoint t{0};
  for (Node& n : nodes) {
    n.stime = t;
    t += n.duration;
    total += n.duration;
  }
  return ExecutionGraph(std::move(nodes), total);
}

// --- The Figure 4 scenarios ---------------------------------------------------
// Both remove a CWait of identical duration (18 units); the surrounding
// structure decides whether the removal pays.

constexpr Duration u(int v) { return ms(v); }  // "1 unit" = 1 ms

TEST(Fig4, LargeBenefitWhenWorkFillsTheGap) {
  // CWork(5) CLaunch(1) [CWait 18 *unnecessary*] CWork(10) CLaunch(1)
  // CWork(10) CWait(4 healthy) ...
  // Between the removed wait and the next sync sit 21 units of CPU work:
  // the GPU can stay busy the whole time, so the full 18 come back.
  ExecutionGraph g = make_graph({
      work(u(5)),
      launch(u(1)),
      wait(u(18), ProblemType::kUnnecessarySync),
      work(u(10)),
      launch(u(1)),
      work(u(10)),
      wait(u(4)),
      work(u(4)),
      wait(Duration{0}),
  });
  const BenefitReport r = expected_benefit(g);
  EXPECT_EQ(r.total, u(18));
}

TEST(Fig4, SmallBenefitWhenNextWaitGrows) {
  // Identical removed wait (18), but only 3 units of CPU work before the
  // next synchronization: the next wait absorbs the other 15.
  ExecutionGraph g = make_graph({
      work(u(5)),
      launch(u(1)),
      wait(u(18), ProblemType::kUnnecessarySync),
      work(u(2)),
      launch(u(1)),
      wait(u(10)),
      work(u(7)),
      wait(Duration{0}),
  });
  const BenefitReport r = expected_benefit(g);
  EXPECT_EQ(r.total, u(3));
}

TEST(Fig4, NextWaitDurationGrowsByUnrealizedPortion) {
  ExecutionGraph g = make_graph({
      wait(u(18), ProblemType::kUnnecessarySync),
      work(u(3)),
      wait(u(10)),
      wait(Duration{0}),
  });
  (void)remove_synchronization(g, 0);
  EXPECT_EQ(g.nodes()[0].duration, Duration{0});
  EXPECT_EQ(g.nodes()[2].duration, u(25));  // 10 + (18 - 3)
}

// --- RemoveSyncronization (Figure 5 lines 15-22) ---------------------------------

TEST(RemoveSync, BenefitCappedByWaitDuration) {
  ExecutionGraph g = make_graph({
      wait(u(2), ProblemType::kUnnecessarySync),
      work(u(50)),
      wait(u(1)),
      wait(Duration{0}),
  });
  EXPECT_EQ(remove_synchronization(g, 0), u(2));
  EXPECT_EQ(g.nodes()[2].duration, u(1));  // no overflow
}

TEST(RemoveSync, NoWorkMeansNoBenefit) {
  ExecutionGraph g = make_graph({
      wait(u(9), ProblemType::kUnnecessarySync),
      wait(u(1)),
      wait(Duration{0}),
  });
  EXPECT_EQ(remove_synchronization(g, 0), Duration{0});
  EXPECT_EQ(g.nodes()[1].duration, u(10));  // full overflow
}

TEST(RemoveSync, NoNextSyncUsesEndOfProgram) {
  ExecutionGraph g = make_graph({
      wait(u(5), ProblemType::kUnnecessarySync),
      work(u(7)),
  });
  EXPECT_EQ(remove_synchronization(g, 0), u(5));
}

TEST(RemoveSync, OnNonSyncNodeThrows) {
  ExecutionGraph g = make_graph({work(u(1))});
  EXPECT_THROW((void)remove_synchronization(g, 0), Error);
}

// --- MoveSynchronization (misplaced; Figure 5 lines 24-27) -------------------------

TEST(MoveSync, BenefitIsFirstUseTime) {
  ExecutionGraph g = make_graph({
      wait(u(10), ProblemType::kMisplacedSync, /*first_use=*/u(4)),
      wait(Duration{0}),
  });
  EXPECT_EQ(move_synchronization(g, 0, {}), u(4));
  EXPECT_EQ(g.nodes()[0].duration, u(6));  // wait shrinks by first-use
}

TEST(MoveSync, CappedVariantLimitsToWaitDuration) {
  ExecutionGraph g = make_graph({
      wait(u(3), ProblemType::kMisplacedSync, /*first_use=*/u(10)),
      wait(Duration{0}),
  });
  BenefitOptions capped;
  capped.cap_misplaced_at_duration = true;
  EXPECT_EQ(move_synchronization(g, 0, capped), u(3));
  EXPECT_EQ(g.nodes()[0].duration, Duration{0});
}

TEST(MoveSync, UncappedVariantIsPaperFaithful) {
  ExecutionGraph g = make_graph({
      wait(u(3), ProblemType::kMisplacedSync, /*first_use=*/u(10)),
      wait(Duration{0}),
  });
  BenefitOptions paper;
  paper.cap_misplaced_at_duration = false;
  EXPECT_EQ(move_synchronization(g, 0, paper), u(10));
  EXPECT_EQ(g.nodes()[0].duration, Duration{0});  // max(0, 3-10)
}

// --- RemoveMemoryTransfer (Figure 5 lines 29-32) -------------------------------------

TEST(RemoveTransfer, BenefitIsLaunchDuration) {
  ExecutionGraph g = make_graph({
      launch(u(2), ProblemType::kUnnecessaryTransfer),
      wait(Duration{0}),
  });
  EXPECT_EQ(remove_memory_transfer(g, 0), u(2));
  EXPECT_EQ(g.nodes()[0].duration, Duration{0});
}

// --- ExpectedBenefit (whole-graph pass) -----------------------------------------------

TEST(ExpectedBenefit, MixedProblemsAccumulateByKind) {
  ExecutionGraph g = make_graph({
      launch(u(2), ProblemType::kUnnecessaryTransfer),
      work(u(5)),
      wait(u(3), ProblemType::kUnnecessarySync),
      work(u(10)),
      wait(u(6), ProblemType::kMisplacedSync, u(1)),
      work(u(2)),
      wait(Duration{0}),
  });
  const BenefitReport r = expected_benefit(g);
  EXPECT_EQ(r.transfer_benefit, u(2));
  EXPECT_EQ(r.sync_benefit, u(3) + u(1));
  EXPECT_EQ(r.total, u(6));
  EXPECT_EQ(r.per_node.size(), 3u);
  EXPECT_EQ(r.benefit_of(0), u(2));
  EXPECT_EQ(r.benefit_of(2), u(3));
  EXPECT_EQ(r.benefit_of(4), u(1));
  EXPECT_EQ(r.benefit_of(6), Duration{0});  // non-problem node
}

TEST(ExpectedBenefit, EvaluationOrderPropagatesThroughChain) {
  // Three back-to-back unnecessary waits; work only at the end. The
  // overflow must flow through the chain and be recovered by the last
  // window.
  ExecutionGraph g = make_graph({
      wait(u(4), ProblemType::kUnnecessarySync),
      wait(u(4), ProblemType::kUnnecessarySync),
      wait(u(4), ProblemType::kUnnecessarySync),
      work(u(100)),
      wait(Duration{0}),
  });
  const BenefitReport r = expected_benefit(g);
  EXPECT_EQ(r.total, u(12));
}

TEST(ExpectedBenefit, TransferRemovalShrinksLaterWindows) {
  // A problematic transfer inside a later sync's window: once removed,
  // the window shrinks and the sync recovers less.
  ExecutionGraph g = make_graph({
      wait(u(10), ProblemType::kUnnecessarySync),
      launch(u(6), ProblemType::kUnnecessaryTransfer),
      work(u(1)),
      wait(u(5)),
      wait(Duration{0}),
  });
  const BenefitReport r = expected_benefit(g);
  // Evaluation order is graph order: the wait sees the launch still
  // present (window 7) -> 7; then the transfer recovers its 6.
  EXPECT_EQ(r.benefit_of(0), u(7));
  EXPECT_EQ(r.benefit_of(1), u(6));
}

TEST(ExpectedBenefitSubset, OnlySelectedNodesEvaluated) {
  ExecutionGraph g = make_graph({
      wait(u(5), ProblemType::kUnnecessarySync),
      work(u(10)),
      wait(u(7), ProblemType::kUnnecessarySync),
      work(u(10)),
      wait(Duration{0}),
  });
  const std::vector<std::size_t> only{2};
  const BenefitReport r = expected_benefit_subset(g, only);
  EXPECT_EQ(r.total, u(7));
  EXPECT_EQ(r.per_node.size(), 1u);
}

TEST(ExpectedBenefitSubset, UnsortedSubsetRejected) {
  ExecutionGraph g = make_graph({
      wait(u(5), ProblemType::kUnnecessarySync),
      wait(u(5), ProblemType::kUnnecessarySync),
  });
  const std::vector<std::size_t> bad{1, 0};
  EXPECT_THROW((void)expected_benefit_subset(g, bad), Error);
}

TEST(ExpectedBenefit, EmptyGraphNoBenefit) {
  const BenefitReport r = expected_benefit(ExecutionGraph{});
  EXPECT_EQ(r.total, Duration{0});
  EXPECT_TRUE(r.per_node.empty());
}

// --- Property tests over randomized graphs ---------------------------------------------

ExecutionGraph random_graph(Rng& rng, std::size_t n_nodes) {
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const int kind = static_cast<int>(rng.next_below(3));
    const Duration d = us(rng.next_in(0, 5000));
    if (kind == 0) {
      nodes.push_back(work(d));
    } else if (kind == 1) {
      nodes.push_back(launch(
          d, rng.next_bool(0.3) ? ProblemType::kUnnecessaryTransfer
                                : ProblemType::kNone));
    } else {
      ProblemType p = ProblemType::kNone;
      Duration first_use{0};
      const int roll = static_cast<int>(rng.next_below(3));
      if (roll == 1) {
        p = ProblemType::kUnnecessarySync;
      } else if (roll == 2) {
        p = ProblemType::kMisplacedSync;
        first_use = us(rng.next_in(0, 2000));
      }
      nodes.push_back(wait(d, p, first_use));
    }
  }
  nodes.push_back(wait(Duration{0}));  // terminal join
  return make_graph(std::move(nodes));
}

class BenefitPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenefitPropertyTest, InvariantsHoldOnRandomGraphs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const ExecutionGraph g = random_graph(rng, 1 + rng.next_below(60));
    const Duration exec = g.total_duration();
    const BenefitReport r = expected_benefit(g);

    // Benefit is never negative and never exceeds total execution time
    // (with capped misplaced handling, the default).
    EXPECT_GE(r.total.count(), 0);
    EXPECT_LE(r.total, exec);
    EXPECT_EQ(r.total, r.sync_benefit + r.transfer_benefit);

    // Per-node benefits are individually sane.
    Duration sum{0};
    for (const NodeBenefit& nb : r.per_node) {
      EXPECT_GE(nb.benefit.count(), 0);
      sum += nb.benefit;
      EXPECT_NE(nb.problem, ProblemType::kNone);
    }
    EXPECT_EQ(sum, r.total);
  }
}

TEST_P(BenefitPropertyTest, SubsetNeverBeatsFullSet) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 25; ++trial) {
    const ExecutionGraph g = random_graph(rng, 5 + rng.next_below(40));
    const auto problems = g.problematic_indices();
    if (problems.empty()) continue;

    // Pick a random subset (in order).
    std::vector<std::size_t> subset;
    for (const std::size_t p : problems) {
      if (rng.next_bool(0.5)) subset.push_back(p);
    }
    const Duration full = expected_benefit(g).total;
    const Duration part = expected_benefit_subset(g, subset).total;
    EXPECT_LE(part, full);
  }
}

TEST_P(BenefitPropertyTest, EvaluationIsDeterministic) {
  Rng rng(GetParam() + 17);
  const ExecutionGraph g = random_graph(rng, 30);
  EXPECT_EQ(expected_benefit(g).total, expected_benefit(g).total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenefitPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace diog::ffm
