// The fleet archive (content addressing, dedup, crash tolerance, gc)
// and the cross-run regression sentinel (lower-median baseline, the
// drift taxonomy, report shapes).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/digest.h"
#include "archive/regress.h"
#include "eventstore/run_io.h"
#include "json/json.h"
#include "support/error.h"
#include "testkit/synth_run.h"

namespace diog {
namespace {

namespace fs = std::filesystem;

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_archive_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A pinned-clock save of a synthetic run: same options, same bytes.
  std::string synth(const std::string& name,
                    const testkit::SynthRunOptions& opts) {
    const std::string path = dir_ + "/" + name + ".dgtrace";
    evstore::save_run(path, testkit::make_synthetic_run(opts),
                      evstore::SaveOptions{.footer_wall_ms = 0});
    return path;
  }

  archive::Archive open_archive() {
    return archive::Archive(archive::ArchiveOptions{
        .root = dir_ + "/archive", .config = {}, .ingest_wall_ms = 0});
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::string dir_;
};

// A digest forged for sentinel tests: real runs cannot cheaply produce
// every drift axis (drops, overhead), but the sentinel only reads the
// index, so a hand-built index exercises it completely.
archive::RunDigest forge(const std::string& id, std::int64_t benefit_ns,
                         std::uint64_t unnecessary_syncs = 32,
                         std::uint64_t dropped = 0,
                         double overhead_factor = 2.0) {
  archive::RunDigest d;
  d.run_id = id;
  d.workload = "w";
  d.events = 1000;
  d.dropped_events = dropped;
  d.unnecessary_syncs = unnecessary_syncs;
  d.sync_count = unnecessary_syncs * 2;
  d.overhead_factor = overhead_factor;
  d.total_benefit_ns = benefit_ns;
  return d;
}

bool has_kind(const archive::RegressReport& r, const std::string& kind) {
  for (const archive::DriftFinding& f : r.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

// --- Content addressing -----------------------------------------------------

TEST_F(ArchiveTest, RunIdIsAHashOfTheFileBytes) {
  const std::string path = synth("a", {.events = 2'000});
  const std::string bytes = slurp(path);
  const std::string id = archive::run_id_of(
      std::as_bytes(std::span(bytes.data(), bytes.size())));
  ASSERT_EQ(id.size(), 16u);
  for (const char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
  }

  archive::Archive ar = open_archive();
  const archive::Archive::AddResult r = ar.add(path);
  EXPECT_EQ(r.digest.run_id, id);
  EXPECT_FALSE(r.deduplicated);
  EXPECT_TRUE(fs::is_regular_file(r.object_path));
  EXPECT_EQ(slurp(r.object_path), bytes) << "object must hold the run bytes";
}

TEST_F(ArchiveTest, ReingestingIdenticalBytesDedupsAndAppendsNothing) {
  const std::string path = synth("a", {.events = 2'000});
  archive::Archive ar = open_archive();
  const archive::Archive::AddResult first = ar.add(path);
  const std::string index_before = slurp(archive::index_path(ar.root()));

  // Same bytes under a different file name: still the same object.
  const std::string copy = dir_ + "/copy.dgtrace";
  fs::copy_file(path, copy);
  const archive::Archive::AddResult again = ar.add(copy);
  EXPECT_TRUE(again.deduplicated);
  EXPECT_EQ(again.digest.run_id, first.digest.run_id);
  EXPECT_EQ(slurp(archive::index_path(ar.root())), index_before)
      << "a dedup add must leave the index byte-identical";
  EXPECT_EQ(ar.index().size(), 1u);
}

TEST_F(ArchiveTest, DigestSurvivesAJsonRoundTrip) {
  const std::string path = synth("a", {.events = 5'000, .problem_sites = 3});
  archive::Archive ar = open_archive();
  const archive::RunDigest d = ar.add(path).digest;
  EXPECT_EQ(d.workload, "synthetic");
  EXPECT_EQ(d.events, 5'000u);
  EXPECT_GT(d.total_benefit_ns, 0);
  EXPECT_FALSE(d.findings.empty());
  EXPECT_LE(d.findings.size(), archive::kDigestTopFindings);

  const json::Value v = d.to_json();
  EXPECT_EQ(v.at("schema").as_string(), "diogenes.digest.v1");
  const archive::RunDigest back = archive::RunDigest::from_json(v);
  EXPECT_EQ(back.to_json().dump(), v.dump());
  EXPECT_EQ(back.run_id, d.run_id);
  EXPECT_EQ(back.events_by_kind[0], d.events_by_kind[0]);
  EXPECT_EQ(back.findings.size(), d.findings.size());
  for (std::size_t i = 0; i < d.findings.size(); ++i) {
    EXPECT_EQ(back.findings[i].title, d.findings[i].title);
    EXPECT_EQ(back.findings[i].benefit_ns, d.findings[i].benefit_ns);
  }

  // A v3-coded run file should show its codec win in the digest, and the
  // field must survive the round trip.
  EXPECT_GT(d.compression_ratio, 1.0);
  EXPECT_EQ(back.compression_ratio, d.compression_ratio);
}

TEST_F(ArchiveTest, DigestWithoutRatioFieldLoadsWithDefault) {
  // Schema compatibility: compression_ratio is an additive v1 field. An
  // index line written by a build that predates it must keep loading,
  // with the neutral 1.0 default.
  const std::string path = synth("a", {.events = 1'000});
  archive::Archive ar = open_archive();
  json::Value v = ar.add(path).digest.to_json();
  json::Object o = v.as_object();
  ASSERT_EQ(o.erase("compression_ratio"), 1u);
  const archive::RunDigest back =
      archive::RunDigest::from_json(json::Value(std::move(o)));
  EXPECT_EQ(back.compression_ratio, 1.0);
}

TEST_F(ArchiveTest, RejectsAnUnfinalizedRun) {
  // A finalized file with the footer torn off is an in-progress prefix.
  const std::string path = synth("torn", {.events = 3'000});
  fs::resize_file(path, fs::file_size(path) - 37);
  archive::Archive ar = open_archive();
  EXPECT_THROW((void)ar.add(path), diog::Error);
  EXPECT_TRUE(ar.index().empty());
}

// --- Index durability -------------------------------------------------------

TEST_F(ArchiveTest, IndexToleratesATornFinalLine) {
  archive::Archive ar = open_archive();
  (void)ar.add(synth("a", {.events = 2'000}));
  (void)ar.add(synth("b", {.events = 2'000, .problem_sites = 6}));
  ASSERT_EQ(ar.index().size(), 2u);

  // A crash mid-append leaves a torn last line; it must be skipped.
  std::ofstream(archive::index_path(ar.root()),
                std::ios::binary | std::ios::app)
      << "{\"schema\":\"diogenes.digest.v1\",\"run_id\":\"tr";
  const std::vector<archive::RunDigest> idx = ar.index();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0].workload, "synthetic");
}

TEST_F(ArchiveTest, GcCollectsOrphansAndCompactsStaleEntries) {
  archive::Archive ar = open_archive();
  const archive::Archive::AddResult a = ar.add(synth("a", {.events = 2'000}));
  const archive::Archive::AddResult b =
      ar.add(synth("b", {.events = 2'000, .problem_sites = 6}));

  // An orphan: an object no index line references (crash between the
  // object rename and the index append).
  const std::string orphan =
      archive::object_path(ar.root(), "00000000deadbeef");
  std::ofstream(orphan, std::ios::binary) << "orphaned bytes";
  // A stale entry: the object vanished out from under the index.
  fs::remove(a.object_path);

  const archive::Archive::GcStats gc = ar.gc();
  EXPECT_EQ(gc.objects_kept, 1u);
  EXPECT_EQ(gc.objects_removed, 1u);
  EXPECT_GT(gc.bytes_removed, 0u);
  EXPECT_EQ(gc.index_entries, 1u);
  EXPECT_EQ(gc.index_dropped, 1u);

  EXPECT_FALSE(fs::exists(orphan));
  const std::vector<archive::RunDigest> idx = ar.index();
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0].run_id, b.digest.run_id);

  const archive::Archive::Stats st = ar.stats();
  EXPECT_EQ(st.runs, 1u);
  EXPECT_EQ(st.workloads, 1u);
  EXPECT_EQ(st.index_entries, 1u);
}

// --- Regression sentinel ----------------------------------------------------

TEST_F(ArchiveTest, RegressFlagsSeededDriftAndIsSilentOnARepeat) {
  const std::string a1 = synth("a1", {.events = 20'000, .problem_sites = 2});
  const std::string a2 = synth("a2", {.events = 20'000, .problem_sites = 2,
                                      .op_spacing_ns = 1001});
  const std::string b =
      synth("b", {.events = 20'000, .problem_sites = 6});

  archive::Archive ar = open_archive();
  (void)ar.add(a1);
  (void)ar.add(a2);

  // Two statistically-identical runs: no drift.
  const archive::RegressReport quiet =
      archive::check_workload(ar.index(), "synthetic");
  EXPECT_FALSE(quiet.drifted()) << quiet.render();
  EXPECT_EQ(quiet.baseline_run_ids.size(), 1u);

  // Re-ingesting known bytes changes nothing, so still no drift.
  (void)ar.add(a2);
  EXPECT_FALSE(archive::check_workload(ar.index(), "synthetic").drifted());

  // The 6-site variant lands: the sentinel must flag it.
  (void)ar.add(b);
  const archive::RegressReport drift =
      archive::check_workload(ar.index(), "synthetic");
  EXPECT_TRUE(drift.drifted());
  EXPECT_TRUE(has_kind(drift, "benefit-drift") ||
              has_kind(drift, "sync-drift"))
      << drift.render();
  EXPECT_EQ(drift.workload, "synthetic");
  EXPECT_EQ(drift.baseline_run_ids.size(), 2u);

  // Findings are severity-ordered and carry the narrative shape.
  for (std::size_t i = 1; i < drift.findings.size(); ++i) {
    EXPECT_GE(drift.findings[i - 1].severity, drift.findings[i].severity);
  }
  for (const archive::DriftFinding& f : drift.findings) {
    EXPECT_FALSE(f.headline.empty());
    EXPECT_FALSE(f.narrative.empty());
    EXPECT_FALSE(f.evidence.empty());
  }
}

TEST_F(ArchiveTest, BaselineIsTheLowerMedianNotTheMean) {
  // One outlier in the window must not move the baseline: four quiet
  // runs at 10ms plus one 100ms outlier still baseline at 10ms, so a
  // 10ms newest run does not drift.
  std::vector<archive::RunDigest> idx = {
      forge("r1", 10'000'000), forge("r2", 10'000'000),
      forge("r3", 100'000'000), forge("r4", 10'000'000),
      forge("r5", 10'000'000), forge("r6", 10'000'000)};
  EXPECT_FALSE(archive::check_workload(idx, "w").drifted());

  // Against the same baseline, a doubled newest run does drift.
  idx.back().total_benefit_ns = 20'000'000;
  const archive::RegressReport r = archive::check_workload(idx, "w");
  EXPECT_TRUE(has_kind(r, "benefit-drift")) << r.render();
}

TEST_F(ArchiveTest, BenefitDriftNeedsBothRelativeAndAbsoluteMagnitude) {
  // +100% but only 10us absolute: under the 1ms floor, not a finding.
  const std::vector<archive::RunDigest> tiny = {forge("r1", 10'000),
                                                forge("r2", 20'000)};
  EXPECT_FALSE(archive::check_workload(tiny, "w").drifted());

  // +5% of 100ms is 5ms — over the floor but under the 10% threshold.
  const std::vector<archive::RunDigest> small = {forge("r1", 100'000'000),
                                                 forge("r2", 105'000'000)};
  EXPECT_FALSE(
      has_kind(archive::check_workload(small, "w"), "benefit-drift"));
}

TEST_F(ArchiveTest, FindingAppearedAndDisappearedAreDetected) {
  archive::DigestFinding stalwart;
  stalwart.title = "sync@alpha";
  stalwart.benefit_ns = 5'000'000;
  archive::DigestFinding newcomer;
  newcomer.title = "sync@beta";
  newcomer.benefit_ns = 4'000'000;

  archive::RunDigest base1 = forge("r1", 10'000'000);
  base1.findings = {stalwart};
  archive::RunDigest base2 = forge("r2", 10'000'000);
  base2.findings = {stalwart};

  archive::RunDigest newest = forge("r3", 10'000'000);
  newest.findings = {newcomer};

  const archive::RegressReport r =
      archive::check_workload({base1, base2, newest}, "w");
  EXPECT_TRUE(has_kind(r, "finding-appeared")) << r.render();
  EXPECT_TRUE(has_kind(r, "finding-disappeared")) << r.render();

  // Present in only PART of the window: its absence is not "disappeared"
  // (it was never a stable fact of the workload).
  archive::RunDigest base3 = forge("r0", 10'000'000);
  const archive::RegressReport part =
      archive::check_workload({base3, base1, newest}, "w");
  EXPECT_FALSE(has_kind(part, "finding-disappeared")) << part.render();
}

TEST_F(ArchiveTest, DropRateDriftIsOneDirectional) {
  // Newest drops ~9.1% of appends vs a 0% baseline: flagged.
  const std::vector<archive::RunDigest> worse = {
      forge("r1", 10'000'000, 32, 0),
      forge("r2", 10'000'000, 32, 100)};
  EXPECT_TRUE(has_kind(archive::check_workload(worse, "w"), "drop-rate"));

  // Newest drops LESS than the baseline: an improvement, not a page.
  const std::vector<archive::RunDigest> better = {
      forge("r1", 10'000'000, 32, 100),
      forge("r2", 10'000'000, 32, 0)};
  EXPECT_FALSE(has_kind(archive::check_workload(better, "w"), "drop-rate"));
}

TEST_F(ArchiveTest, OverheadDriftUsesItsOwnThreshold) {
  // 2.0x -> 3.0x collection overhead is +50%, over the 25% threshold.
  const std::vector<archive::RunDigest> drifted = {
      forge("r1", 10'000'000, 32, 0, 2.0),
      forge("r2", 10'000'000, 32, 0, 3.0)};
  EXPECT_TRUE(
      has_kind(archive::check_workload(drifted, "w"), "overhead-drift"));

  // 2.0x -> 2.2x is +10%: under it.
  const std::vector<archive::RunDigest> fine = {
      forge("r1", 10'000'000, 32, 0, 2.0),
      forge("r2", 10'000'000, 32, 0, 2.2)};
  EXPECT_FALSE(
      has_kind(archive::check_workload(fine, "w"), "overhead-drift"));
}

TEST_F(ArchiveTest, SingleDigestWorkloadsHaveNothingToCompare) {
  const std::vector<archive::RunDigest> one = {forge("r1", 10'000'000)};
  const archive::RegressReport r = archive::check_workload(one, "w");
  EXPECT_FALSE(r.drifted());
  EXPECT_TRUE(r.baseline_run_ids.empty());
  EXPECT_TRUE(archive::check_all(one, {}).empty());
}

TEST_F(ArchiveTest, ReportJsonAndTextCarryTheNarrativeShape) {
  const std::vector<archive::RunDigest> idx = {forge("r1", 10'000'000),
                                               forge("r2", 40'000'000)};
  const archive::RegressReport r = archive::check_workload(idx, "w");
  ASSERT_TRUE(r.drifted());

  const json::Value v = r.to_json();
  EXPECT_EQ(v.at("schema").as_string(), "diogenes.regress.v1");
  EXPECT_EQ(v.at("workload").as_string(), "w");
  EXPECT_EQ(v.at("run_id").as_string(), "r2");
  const json::Value& f = v.at("findings").at(0);
  EXPECT_FALSE(f.at("kind").as_string().empty());
  EXPECT_FALSE(f.at("headline").as_string().empty());
  EXPECT_FALSE(f.at("narrative").as_string().empty());
  EXPECT_NO_THROW((void)json::parse(v.dump()));

  const std::string text = r.render();
  EXPECT_NE(text.find("workload w:"), std::string::npos) << text;
  EXPECT_NE(text.find("why:"), std::string::npos) << text;
}

}  // namespace
}  // namespace diog
