#include <gtest/gtest.h>

#include <vector>

#include "hooks/hook_table.h"

namespace diog::hooks {
namespace {

TEST(FnClassification, PublicPrivateInternalPartition) {
  int pub = 0, priv = 0, internal = 0;
  for (std::size_t i = 0; i < kFnCount; ++i) {
    const Fn f = static_cast<Fn>(i);
    const int classes = static_cast<int>(is_public_api(f)) +
                        static_cast<int>(is_private_api(f)) +
                        static_cast<int>(is_internal(f));
    EXPECT_EQ(classes, 1) << fn_name(f);
    pub += is_public_api(f);
    priv += is_private_api(f);
    internal += is_internal(f);
  }
  EXPECT_GT(pub, 15);
  EXPECT_EQ(priv, 6);
  EXPECT_EQ(internal, 5);
}

TEST(FnClassification, Names) {
  EXPECT_EQ(fn_name(Fn::kCudaFree), "cudaFree");
  EXPECT_EQ(fn_name(Fn::kCudaDeviceSynchronize), "cudaDeviceSynchronize");
  EXPECT_EQ(fn_name(Fn::kPrivMemFree), "cuPrivMemFree");
  EXPECT_EQ(fn_name(Fn::kInternalWaitForStream),
            "nv_internal_wait_for_stream");
}

TEST(FnClassification, DocumentedTransferFns) {
  EXPECT_TRUE(is_documented_transfer_fn(Fn::kCudaMemcpy));
  EXPECT_TRUE(is_documented_transfer_fn(Fn::kCudaMemcpyAsync));
  EXPECT_TRUE(is_documented_transfer_fn(Fn::kCudaMemset));
  EXPECT_TRUE(is_documented_transfer_fn(Fn::kPrivMemcpyDtoH));
  EXPECT_FALSE(is_documented_transfer_fn(Fn::kCudaMalloc));
  EXPECT_FALSE(is_documented_transfer_fn(Fn::kCudaLaunchKernel));
}

TEST(FnClassification, ExplicitSyncFns) {
  EXPECT_TRUE(is_explicit_sync_fn(Fn::kCudaDeviceSynchronize));
  EXPECT_TRUE(is_explicit_sync_fn(Fn::kCudaThreadSynchronize));
  EXPECT_TRUE(is_explicit_sync_fn(Fn::kCudaStreamSynchronize));
  EXPECT_TRUE(is_explicit_sync_fn(Fn::kCudaEventSynchronize));
  // The paper's central point: these synchronize but are NOT explicit
  // sync functions, so CUPTI produces no sync records for them.
  EXPECT_FALSE(is_explicit_sync_fn(Fn::kCudaMemcpy));
  EXPECT_FALSE(is_explicit_sync_fn(Fn::kCudaFree));
  EXPECT_FALSE(is_explicit_sync_fn(Fn::kPrivSync));
}

TEST(HookTable, EntryAndExitFireWithTimes) {
  HookTable table;
  VirtualClock clock;
  clock.advance(ms(1));

  std::vector<std::string> log;
  Probe p;
  p.on_entry = [&](const HookContext& ctx) {
    EXPECT_EQ(ctx.fn, Fn::kCudaFree);
    EXPECT_EQ(ctx.entry_time, ms(1));
    log.push_back("entry");
  };
  p.on_exit = [&](const HookContext& ctx) {
    EXPECT_EQ(ctx.exit_time, ms(3));
    EXPECT_EQ(ctx.duration(), ms(2));
    log.push_back("exit");
  };
  table.attach(Fn::kCudaFree, p);

  OpInfo info;
  const auto id = table.fire_entry(Fn::kCudaFree, info, clock, 1, false);
  clock.advance(ms(2));
  table.fire_exit(Fn::kCudaFree, id, TimePoint{ms(1)}, info, clock, 1, false);
  EXPECT_EQ(log, (std::vector<std::string>{"entry", "exit"}));
}

TEST(HookTable, UnattachedFnFiresNothing) {
  HookTable table;
  VirtualClock clock;
  OpInfo info;
  EXPECT_NO_THROW(table.fire_entry(Fn::kCudaMalloc, info, clock, 1, false));
}

TEST(HookTable, EventIdsMonotonic) {
  HookTable table;
  VirtualClock clock;
  OpInfo info;
  const auto a = table.fire_entry(Fn::kCudaMalloc, info, clock, 1, false);
  const auto b = table.fire_entry(Fn::kCudaFree, info, clock, 1, false);
  EXPECT_LT(a, b);
}

TEST(HookTable, ProbeCostsAdvanceClock) {
  HookTable table;
  VirtualClock clock;
  Probe p;
  p.entry_cost = us(5);
  p.exit_cost = us(7);
  p.on_entry = [](const HookContext&) {};
  p.on_exit = [](const HookContext&) {};
  table.attach(Fn::kCudaMemcpy, p);

  OpInfo info;
  const auto id = table.fire_entry(Fn::kCudaMemcpy, info, clock, 1, false);
  EXPECT_EQ(clock.now(), us(5));
  table.fire_exit(Fn::kCudaMemcpy, id, TimePoint{0}, info, clock, 1, false);
  EXPECT_EQ(clock.now(), us(12));
}

TEST(HookTable, CostNotChargedWithoutCallback) {
  HookTable table;
  VirtualClock clock;
  Probe p;
  p.entry_cost = us(5);  // no on_entry callback
  p.on_exit = [](const HookContext&) {};
  table.attach(Fn::kCudaMemcpy, p);
  OpInfo info;
  (void)table.fire_entry(Fn::kCudaMemcpy, info, clock, 1, false);
  EXPECT_EQ(clock.now().count(), 0);
}

TEST(HookTable, MultipleProbesFireInAttachOrder) {
  HookTable table;
  VirtualClock clock;
  std::vector<int> order;
  Probe p1, p2;
  p1.on_exit = [&](const HookContext&) { order.push_back(1); };
  p2.on_exit = [&](const HookContext&) { order.push_back(2); };
  table.attach(Fn::kCudaFree, p1);
  table.attach(Fn::kCudaFree, p2);
  OpInfo info;
  table.fire_exit(Fn::kCudaFree, 0, TimePoint{0}, info, clock, 1, false);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(HookTable, DetachStopsFiring) {
  HookTable table;
  VirtualClock clock;
  int fired = 0;
  Probe p;
  p.on_entry = [&](const HookContext&) { ++fired; };
  const ProbeId id = table.attach(Fn::kCudaFree, p);
  OpInfo info;
  (void)table.fire_entry(Fn::kCudaFree, info, clock, 1, false);
  table.detach(id);
  (void)table.fire_entry(Fn::kCudaFree, info, clock, 1, false);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(table.any_attached(Fn::kCudaFree));
}

TEST(HookTable, AttachMatchingCoversPredicate) {
  HookTable table;
  const auto ids = table.attach_matching(
      [](Fn f) { return is_internal(f); }, Probe{});
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_TRUE(table.any_attached(Fn::kInternalWaitForStream));
  EXPECT_TRUE(table.any_attached(Fn::kInternalFencePoll));
  EXPECT_FALSE(table.any_attached(Fn::kCudaMalloc));
}

TEST(HookTable, DetachAll) {
  HookTable table;
  (void)table.attach_matching([](Fn) { return true; }, Probe{});
  EXPECT_EQ(table.probe_count(), kFnCount);
  table.detach_all();
  EXPECT_EQ(table.probe_count(), 0u);
}

TEST(HookTable, ContextCarriesDepthAndLibraryFlag) {
  HookTable table;
  VirtualClock clock;
  int depth_seen = 0;
  bool lib_seen = false;
  Probe p;
  p.on_entry = [&](const HookContext& ctx) {
    depth_seen = ctx.dispatch_depth;
    lib_seen = ctx.from_vendor_library;
  };
  table.attach(Fn::kPrivSync, p);
  OpInfo info;
  (void)table.fire_entry(Fn::kPrivSync, info, clock, 3, true);
  EXPECT_EQ(depth_seen, 3);
  EXPECT_TRUE(lib_seen);
}

}  // namespace
}  // namespace diog::hooks
