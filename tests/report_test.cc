// Golden-format tests of the terminal reports: the displays mirror the
// paper's Figures 6-8 layout, and their key lines must stay stable (the
// CLI, examples and EXPERIMENTS.md all quote them).
#include <gtest/gtest.h>

#include "core/report.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using hooks::Fn;

// Build a deterministic AnalysisResult by hand: three problem nodes at
// two sites inside a 10-second execution.
AnalysisResult handmade_result() {
  AnalysisResult r;
  r.workload_name = "golden";
  r.s1.exec_time = secs(10.0);

  std::vector<const trace::Frame*> frames{
      trace::FrameTable::instance().intern("main", "app.cc", 1),
      trace::FrameTable::instance().intern("update<float>", "als.cpp", 856)};
  const trace::StackTrace st(frames);

  std::vector<Node> nodes;
  for (int i = 0; i < 2; ++i) {
    Node wait;
    wait.type = NType::kCWait;
    wait.duration = secs(1.0);
    wait.problem = ProblemType::kUnnecessarySync;
    wait.api = Fn::kCudaFree;
    wait.stack = st;
    wait.op_index = i;
    nodes.push_back(wait);

    Node work;
    work.type = NType::kCWork;
    work.duration = secs(3.0);
    nodes.push_back(work);
  }
  Node terminal;
  terminal.type = NType::kCWait;
  nodes.push_back(terminal);

  TimePoint t{0};
  for (Node& n : nodes) {
    n.stime = t;
    t += n.duration;
  }
  r.graph = ExecutionGraph(std::move(nodes), secs(10.0));
  r.benefit = expected_benefit(r.graph);
  r.single_points = single_point_groups(r.graph);
  r.folds = folded_api_groups(r.graph);
  r.sequences = sequence_groups(r.graph, {}, 1);
  return r;
}

TEST(ReportGolden, OverviewLayout) {
  const AnalysisResult r = handmade_result();
  const std::string text = render_overview(r);
  EXPECT_NE(text.find("Diogenes Overview Display (golden)"),
            std::string::npos);
  EXPECT_NE(text.find("Time(s) (% of execution time)"), std::string::npos);
  // 2 x 1s waits fully recoverable out of 10s.
  EXPECT_NE(text.find("2.000s (20.00%)"), std::string::npos);
  EXPECT_NE(text.find("Fold on cudaFree"), std::string::npos);
  EXPECT_NE(text.find("Back/Previous"), std::string::npos);
  EXPECT_NE(text.find("Exit"), std::string::npos);
}

TEST(ReportGolden, FoldExpansionShowsFoldedTemplate) {
  const AnalysisResult r = handmade_result();
  ASSERT_FALSE(r.folds.empty());
  const std::string text = render_fold_expansion(r, r.folds[0]);
  // Template parameters are discarded in the expansion line.
  EXPECT_NE(text.find("update<...>"), std::string::npos);
  EXPECT_EQ(text.find("update<float>"), std::string::npos);
  EXPECT_NE(text.find("Conditionally unnecessary (see: conditions)"),
            std::string::npos);
}

TEST(ReportGolden, SequenceLayoutMatchesFigure6) {
  const AnalysisResult r = handmade_result();
  ASSERT_FALSE(r.sequences.empty());
  const std::string text = render_sequence(r, r.sequences[0]);
  EXPECT_NE(text.find("Time Recoverable:"), std::string::npos);
  EXPECT_NE(text.find("of execution time)"), std::string::npos);
  // The two problem waits are contiguous (no necessary sync between
  // them): one sequence instance with two members.
  EXPECT_NE(text.find("Number of Sync Issues: 2"), std::string::npos);
  EXPECT_NE(text.find("Number of Transfer Issues: 0"), std::string::npos);
  EXPECT_NE(
      text.find("Select start/ending subsequence to get refined estimate"),
      std::string::npos);
  EXPECT_NE(text.find("1. cudaFree in als.cpp at line 856"),
            std::string::npos);
}

TEST(ReportGolden, SubsequenceLayoutMatchesFigure8) {
  const AnalysisResult r = handmade_result();
  ASSERT_FALSE(r.sequences.empty());
  const Group sub = subsequence(r.graph, r.sequences[0], 1, 1);
  const std::string text = render_subsequence(r, sub, 1, 1);
  EXPECT_NE(text.find("Time Recoverable In Subsequence:"),
            std::string::npos);
  EXPECT_NE(text.find("of execution time)"), std::string::npos);
}

TEST(ReportGolden, ApiSavingsColumnFormat) {
  const AnalysisResult r = handmade_result();
  const std::string text = render_api_savings(r);
  EXPECT_NE(text.find("Diogenes Estimated Savings (golden)"),
            std::string::npos);
  EXPECT_NE(text.find("(20.00%, 1)  cudaFree"), std::string::npos);
}

TEST(ReportGolden, FractionHelpers) {
  const AnalysisResult r = handmade_result();
  EXPECT_DOUBLE_EQ(r.fraction_of_exec(secs(1.0)), 0.1);
  EXPECT_EQ(r.exec_time(), secs(10.0));
}

TEST(ReportGolden, EmptyResultRendersGracefully) {
  AnalysisResult r;
  r.workload_name = "empty";
  r.s1.exec_time = secs(1.0);
  EXPECT_NO_THROW((void)render_overview(r));
  EXPECT_NO_THROW((void)render_api_savings(r));
  EXPECT_NO_THROW((void)export_json(r));
}

TEST(ReportWatch, RateLineDifferencesTwoPolls) {
  // 5000 events and 10 drops over a 2 s interval.
  const std::string line = render_watch_rates(5000, 10, 2.0);
  EXPECT_EQ(line, "Rate: 2500 event(s)/s, 5 drop(s)/s\n");
  EXPECT_EQ(render_watch_rates(0, 0, 1.0), "Rate: 0 event(s)/s, 0 drop(s)/s\n");
}

TEST(ReportWatch, FirstFrameHasNoRateLine) {
  EXPECT_EQ(render_watch_rates(100, 0, 0.0), "");
  EXPECT_EQ(render_watch_rates(100, 0, -1.0), "");
}

}  // namespace
}  // namespace diog::ffm
