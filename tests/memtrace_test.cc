#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "memtrace/page_tracer.h"
#include "support/error.h"

namespace diog::memtrace {
namespace {

// Page-aligned scratch buffer for protection tests.
struct AlignedBuf {
  explicit AlignedBuf(std::size_t pages = 1) {
    const auto ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    size = ps * pages;
    ptr = static_cast<volatile char*>(std::aligned_alloc(ps, size));
    std::memset(const_cast<char*>(ptr), 0, size);
  }
  ~AlignedBuf() { std::free(const_cast<char*>(ptr)); }
  volatile char* ptr;
  std::size_t size;
};

class PageTracerTest : public ::testing::Test {
 protected:
  PageTracerTest() : tracer_(PageTracer::instance()) {
    if (tracer_.armed()) tracer_.disarm();
    tracer_.unregister_all();
    tracer_.clear_accesses();
  }
  ~PageTracerTest() override {
    if (tracer_.armed()) tracer_.disarm();
    tracer_.unregister_all();
    tracer_.clear_accesses();
  }
  PageTracer& tracer_;
};

TEST_F(PageTracerTest, FirstReadIsRecordedAndExecutionContinues) {
  AlignedBuf buf;
  const_cast<char*>(buf.ptr)[10] = 42;
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 777);
  tracer_.arm();
  const char v = buf.ptr[10];  // faults, records, retries
  tracer_.disarm();
  EXPECT_EQ(v, 42);
  ASSERT_EQ(tracer_.accesses().size(), 1u);
  const AccessRecord& rec = tracer_.accesses()[0];
  EXPECT_EQ(rec.user_tag, 777u);
  EXPECT_EQ(rec.fault_address, buf.ptr + 10);
#if defined(__x86_64__)
  EXPECT_FALSE(rec.is_write);
  EXPECT_NE(rec.instruction_pointer, 0u);
#endif
}

TEST_F(PageTracerTest, FirstWriteIsRecordedAsWrite) {
  AlignedBuf buf;
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  const_cast<char*>(buf.ptr)[5] = 9;
  tracer_.disarm();
  ASSERT_EQ(tracer_.accesses().size(), 1u);
#if defined(__x86_64__)
  EXPECT_TRUE(tracer_.accesses()[0].is_write);
#endif
  EXPECT_EQ(const_cast<char*>(buf.ptr)[5], 9);
}

TEST_F(PageTracerTest, OnlyFirstAccessPerArmRecorded) {
  AlignedBuf buf;
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  (void)buf.ptr[0];
  (void)buf.ptr[1];
  const_cast<char*>(buf.ptr)[2] = 1;
  tracer_.disarm();
  EXPECT_EQ(tracer_.accesses().size(), 1u);
}

TEST_F(PageTracerTest, RearmCatchesNextAccess) {
  AlignedBuf buf;
  const RangeId id =
      tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  (void)buf.ptr[0];
  tracer_.disarm();
  tracer_.arm();
  (void)buf.ptr[0];
  tracer_.disarm();
  EXPECT_EQ(tracer_.accesses().size(), 2u);
  EXPECT_EQ(tracer_.accesses()[0].range, id);
  EXPECT_EQ(tracer_.accesses()[1].range, id);
}

TEST_F(PageTracerTest, MultipleRangesRecordIndependently) {
  AlignedBuf a, b;
  const RangeId ra =
      tracer_.register_range(const_cast<char*>(a.ptr), a.size, 100);
  const RangeId rb =
      tracer_.register_range(const_cast<char*>(b.ptr), b.size, 200);
  tracer_.arm();
  (void)b.ptr[0];
  (void)a.ptr[0];
  tracer_.disarm();
  ASSERT_EQ(tracer_.accesses().size(), 2u);
  EXPECT_EQ(tracer_.accesses()[0].range, rb);
  EXPECT_EQ(tracer_.accesses()[0].user_tag, 200u);
  EXPECT_EQ(tracer_.accesses()[1].range, ra);
  (void)rb;
}

TEST_F(PageTracerTest, UnprotectedRangeNotRecorded) {
  AlignedBuf a, b;
  tracer_.register_range(const_cast<char*>(a.ptr), a.size, 1);
  tracer_.arm();
  (void)b.ptr[0];  // not registered: no fault, no record
  tracer_.disarm();
  EXPECT_TRUE(tracer_.accesses().empty());
}

TEST_F(PageTracerTest, AccessTimestampIsVirtualTime) {
  AlignedBuf buf;
  VirtualClock clock;
  clock.advance(ms(123));
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  (void)buf.ptr[0];
  tracer_.disarm();
  ASSERT_EQ(tracer_.accesses().size(), 1u);
  EXPECT_EQ(tracer_.accesses()[0].time, ms(123));
}

TEST_F(PageTracerTest, StackCapturedInHandler) {
  AlignedBuf buf;
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  {
    DIOG_APP_FRAME("consume_gpu_data", "app.cc", 99);
    (void)buf.ptr[0];
  }
  tracer_.disarm();
  ASSERT_EQ(tracer_.accesses().size(), 1u);
  const trace::StackTrace st = tracer_.accesses()[0].stack();
  ASSERT_GE(st.depth(), 1u);
  EXPECT_EQ(st.leaf()->function, "consume_gpu_data");
  EXPECT_EQ(st.leaf()->line, 99);
}

TEST_F(PageTracerTest, UnregisterRemovesCoverage) {
  AlignedBuf buf;
  const RangeId id =
      tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  EXPECT_TRUE(tracer_.covers(const_cast<char*>(buf.ptr)));
  tracer_.unregister_range(id);
  EXPECT_FALSE(tracer_.covers(const_cast<char*>(buf.ptr)));
  EXPECT_EQ(tracer_.range_count(), 0u);
}

TEST_F(PageTracerTest, MutationWhileArmedIsRejected) {
  AlignedBuf buf;
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  EXPECT_THROW(
      tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 2),
      Error);
  EXPECT_THROW(tracer_.unregister_all(), Error);
  EXPECT_THROW(tracer_.arm(), Error);
  EXPECT_THROW(tracer_.clear_accesses(), Error);
  tracer_.disarm();
}

TEST_F(PageTracerTest, InvalidRegistrationRejected) {
  EXPECT_THROW(tracer_.register_range(nullptr, 100, 1), Error);
  AlignedBuf buf;
  EXPECT_THROW(
      tracer_.register_range(const_cast<char*>(buf.ptr), 0, 1), Error);
}

TEST_F(PageTracerTest, MultiPageRangeSingleRecord) {
  AlignedBuf buf(4);
  tracer_.register_range(const_cast<char*>(buf.ptr), buf.size, 1);
  tracer_.arm();
  // Touch the last page first: one record, whole range unprotected.
  (void)buf.ptr[buf.size - 1];
  (void)buf.ptr[0];
  tracer_.disarm();
  EXPECT_EQ(tracer_.accesses().size(), 1u);
  EXPECT_EQ(tracer_.accesses()[0].fault_address, buf.ptr + buf.size - 1);
}

}  // namespace
}  // namespace diog::memtrace
