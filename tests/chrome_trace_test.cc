#include <gtest/gtest.h>

#include <filesystem>

#include "core/chrome_trace.h"
#include "core/stage1_baseline.h"
#include "core/stage2_tracing.h"
#include "core/stage3_memhash.h"
#include "gpusim/api.h"
#include "gpusim/host_buffer.h"
#include "trace/callstack.h"

namespace diog::ffm {
namespace {

using gpusim::KernelDesc;
using hooks::MemcpyKind;

// Build a small stage-2/3 dataset plus a runtime with a populated GPU
// timeline.
struct Dataset {
  Stage2Result s2;
  Stage3Result s3;
  std::unique_ptr<gpusim::Runtime> rt;
};

Dataset make_dataset() {
  auto out = std::make_shared<gpusim::HostBuffer<float>>(1024);
  Workload w;
  w.name = "tracee";
  w.device = gpusim::DeviceConfig{};
  w.body = [out] {
    DIOG_APP_FRAME("trace_main", "tracee.cu", 7);
    void* dev = nullptr;
    (void)gpusim::cudaMalloc(&dev, out->size_bytes());
    KernelDesc k;
    k.name = "trace_kernel";
    k.duration = ms(3);
    (void)gpusim::cudaLaunchKernel(k);
    (void)gpusim::cudaMemcpy(out->data(), dev, out->size_bytes(),
                             MemcpyKind::kDeviceToHost);
    volatile float v = (*out)[0];
    (void)v;
    (void)gpusim::cudaFree(dev);
  };

  Dataset d;
  const ToolConfig cfg;
  const Stage1Result s1 = run_stage1(w, cfg);
  d.s2 = run_stage2(w, cfg, s1);
  d.s3 = run_stage3(w, cfg, s1);

  // A separate plain run provides the GPU ground-truth timeline.
  d.rt = std::make_unique<gpusim::Runtime>(w.device);
  {
    gpusim::RuntimeScope scope(*d.rt);
    w.body();
  }
  return d;
}

const json::Array& events_of(const json::Value& v) {
  return v.at("traceEvents").as_array();
}

TEST(ChromeTrace, EmitsCpuAndGpuTracks) {
  const Dataset d = make_dataset();
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get());

  bool cpu_meta = false, gpu_meta = false, kernel_event = false,
       memcpy_event = false;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() == "M") {
      const std::string label = e.at("args").at("name").as_string();
      if (label == "CPU driver calls") cpu_meta = true;
      if (label.find("GPU stream") != std::string::npos) gpu_meta = true;
    } else {
      const std::string name = e.at("name").as_string();
      if (name == "trace_kernel") kernel_event = true;
      if (name == "cudaMemcpy") memcpy_event = true;
    }
  }
  EXPECT_TRUE(cpu_meta);
  EXPECT_TRUE(gpu_meta);
  EXPECT_TRUE(kernel_event);
  EXPECT_TRUE(memcpy_event);
}

TEST(ChromeTrace, EventsCarryTimesAndDurations) {
  const Dataset d = make_dataset();
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get());
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() != "X") continue;
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_EQ(e.at("pid").as_int(), 1);
  }
}

TEST(ChromeTrace, ProblemAnnotationsAttached) {
  const Dataset d = make_dataset();
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get());
  bool required_seen = false, unnecessary_seen = false;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() != "X" || !e.contains("args")) continue;
    const json::Value& args = e.at("args");
    if (!args.contains("sync")) continue;
    if (args.at("sync").as_string() == "required") required_seen = true;
    if (args.at("sync").as_string() == "unnecessary") {
      unnecessary_seen = true;
    }
  }
  EXPECT_TRUE(required_seen);    // the readback memcpy's sync
  EXPECT_TRUE(unnecessary_seen); // the free's hidden sync
}

TEST(ChromeTrace, SourceAttributionIncluded) {
  const Dataset d = make_dataset();
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get());
  bool any_source = false;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() == "X" && e.contains("args") &&
        e.at("args").contains("source")) {
      any_source = true;
    }
  }
  EXPECT_TRUE(any_source);
}

TEST(ChromeTrace, OptionsDisableTracks) {
  const Dataset d = make_dataset();
  ChromeTraceOptions no_gpu;
  no_gpu.include_gpu_timeline = false;
  no_gpu.include_internal_track = false;
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get(), no_gpu);
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() == "X") {
      EXPECT_EQ(e.at("tid").as_int(), 1);  // only the CPU track
    }
  }

  ChromeTraceOptions no_cpu;
  no_cpu.include_cpu_ops = false;
  no_cpu.include_internal_track = false;
  const json::Value v2 = chrome_trace(d.s2, &d.s3, d.rt.get(), no_cpu);
  for (const json::Value& e : events_of(v2)) {
    if (e.at("ph").as_string() == "X") {
      EXPECT_GE(e.at("tid").as_int(), 100);  // only GPU tracks
    }
  }
}

TEST(ChromeTrace, InternalTrackEmitsNamedNestedSpans) {
  const Dataset d = make_dataset();
  obs::SpanCollector spans;
  const std::int64_t outer = spans.open("stage2.run");
  const std::int64_t inner = spans.open("stage2.trace_sync");
  spans.close(inner);
  spans.close(outer);

  ChromeTraceOptions opts;
  opts.internal_spans = &spans;
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get(), opts);

  bool internal_meta = false;
  const json::Value* outer_ev = nullptr;
  const json::Value* inner_ev = nullptr;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() == "M" &&
        e.at("args").at("name").as_string() == "diogenes-internal") {
      internal_meta = true;
      EXPECT_EQ(e.at("tid").as_int(), 50);
    }
    if (e.at("ph").as_string() != "X" || e.at("tid").as_int() != 50) continue;
    if (e.at("name").as_string() == "stage2.run") outer_ev = &e;
    if (e.at("name").as_string() == "stage2.trace_sync") inner_ev = &e;
  }
  EXPECT_TRUE(internal_meta);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);

  // Nesting is visible both structurally (depth/parent args) and
  // temporally (the child is contained in the parent's interval).
  EXPECT_EQ(outer_ev->at("args").at("depth").as_int(), 0);
  EXPECT_FALSE(outer_ev->at("args").contains("parent"));
  EXPECT_EQ(inner_ev->at("args").at("depth").as_int(), 1);
  EXPECT_EQ(inner_ev->at("args").at("parent").as_int(), outer);
  const double o_ts = outer_ev->at("ts").as_double();
  const double o_end = o_ts + outer_ev->at("dur").as_double();
  const double i_ts = inner_ev->at("ts").as_double();
  const double i_end = i_ts + inner_ev->at("dur").as_double();
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
}

TEST(ChromeTrace, InternalTrackOpenSpansRenderZeroDuration) {
  const Dataset d = make_dataset();
  obs::SpanCollector spans;
  (void)spans.open("ffm.analyze");  // never closed

  ChromeTraceOptions opts;
  opts.internal_spans = &spans;
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get(), opts);
  bool seen = false;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() == "X" && e.at("tid").as_int() == 50 &&
        e.at("name").as_string() == "ffm.analyze") {
      seen = true;
      EXPECT_EQ(e.at("dur").as_double(), 0.0);
    }
  }
  EXPECT_TRUE(seen);
}

TEST(ChromeTrace, InternalTrackAbsentWhenDisabledOrEmpty) {
  const Dataset d = make_dataset();
  obs::SpanCollector spans;
  spans.close(spans.open("stage1.run"));

  ChromeTraceOptions off;
  off.include_internal_track = false;
  off.internal_spans = &spans;
  const json::Value disabled = chrome_trace(d.s2, &d.s3, d.rt.get(), off);
  for (const json::Value& e : events_of(disabled)) {
    EXPECT_NE(e.at("tid").as_int(), 50);
  }

  // An empty collector contributes nothing — not even the meta event.
  obs::SpanCollector empty;
  ChromeTraceOptions on;
  on.internal_spans = &empty;
  const json::Value no_spans = chrome_trace(d.s2, &d.s3, d.rt.get(), on);
  for (const json::Value& e : events_of(no_spans)) {
    EXPECT_NE(e.at("tid").as_int(), 50);
  }
}

TEST(ChromeTrace, ProblemAnnotationsSurviveAlongsideInternalSpans) {
  const Dataset d = make_dataset();
  obs::SpanCollector spans;
  spans.close(spans.open("stage3.run"));

  ChromeTraceOptions opts;
  opts.internal_spans = &spans;
  const json::Value v = chrome_trace(d.s2, &d.s3, d.rt.get(), opts);
  bool sync_annotation = false, internal_span = false;
  for (const json::Value& e : events_of(v)) {
    if (e.at("ph").as_string() != "X") continue;
    if (e.contains("args") && e.at("args").contains("sync")) {
      sync_annotation = true;
    }
    if (e.at("tid").as_int() == 50) internal_span = true;
  }
  EXPECT_TRUE(sync_annotation);
  EXPECT_TRUE(internal_span);
}

TEST(ChromeTrace, NullRuntimeAndProblemsTolerated) {
  const Dataset d = make_dataset();
  const json::Value v = chrome_trace(d.s2, nullptr, nullptr);
  EXPECT_GT(events_of(v).size(), 0u);
}

TEST(ChromeTrace, SavesParseableFile) {
  const Dataset d = make_dataset();
  const auto path =
      std::filesystem::temp_directory_path() / "diog_chrome_trace.json";
  save_chrome_trace(path.string(), d.s2, &d.s3, d.rt.get());
  const json::Value loaded = json::load_file(path.string());
  EXPECT_EQ(loaded.at("displayTimeUnit").as_string(), "ms");
  EXPECT_GT(loaded.at("traceEvents").size(), 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace diog::ffm
