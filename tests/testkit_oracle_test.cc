// The metamorphic oracle for the stage-5 analysis (ISSUE 4, leg 3),
// exercised over every bundled example workload — pathological and
// fixed variants — plus unit checks of the resharding transform the
// persistence invariant depends on.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "apps/apps.h"
#include "core/diogenes.h"
#include "core/report.h"
#include "eventstore/run_io.h"
#include "testkit/oracle.h"

namespace diog::testkit {
namespace {

namespace fs = std::filesystem;

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_oracle_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  OracleOptions opts() const {
    OracleOptions o;
    o.work_dir = dir_;
    return o;
  }

  std::string dir_;
};

// The acceptance criterion: every invariant family holds on every
// bundled workload. One test per app pair so failures name the app.
class OracleAppTest : public OracleTest,
                      public ::testing::WithParamInterface<std::size_t> {};

TEST_P(OracleAppTest, InvariantsHoldOnPathologicalAndFixed) {
  const apps::AppPair app = apps::all_apps().at(GetParam());
  for (const ffm::Workload* w : {&app.pathological, &app.fixed}) {
    ffm::Diogenes tool(*w, ffm::ToolConfig{});
    const ffm::AnalysisResult r = tool.analyze();
    const OracleReport report = check_analysis_invariants(r.run, opts());
    EXPECT_TRUE(report.ok())
        << app.name << " (" << w->name << "):\n"
        << report.render();
    EXPECT_GT(report.checks, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, OracleAppTest,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return apps::all_apps().at(info.param).name;
                         });

// --- resharding --------------------------------------------------------------

TEST_F(OracleTest, ReshardingPreservesContentAcrossManyChunks) {
  const apps::AppPair app = apps::all_apps().at(0);
  ffm::Diogenes tool(app.pathological, ffm::ToolConfig{});
  const ffm::AnalysisResult r = tool.analyze();
  ASSERT_GT(r.run.store->size(), 600u);  // enough for several shards

  const std::string path = dir_ + "/resharded.dgtrace";
  reshard_run_to_file(r.run, path, /*period=*/257);

  evstore::RunFileInfo info;
  const evstore::TraceRun back =
      evstore::open_run(path, evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_GE(info.chunks, r.run.store->size() / 257);
  ASSERT_EQ(back.store->size(), r.run.store->size());

  // And the analysis of the resharded file is byte-identical.
  const ffm::AnalysisResult again =
      ffm::run_analysis(back, ffm::ToolConfig{});
  EXPECT_EQ(ffm::export_json(again).dump(),
            ffm::export_json(ffm::run_analysis(r.run, ffm::ToolConfig{}))
                .dump());
}

TEST_F(OracleTest, OracleCountsChecksOnATrivialRun) {
  // A run with no events still exercises the bounds and persistence
  // families (zero problems, zero benefit) without tripping them.
  evstore::TraceRun run;
  run.meta.workload = "empty_wl";
  run.meta.s1_exec = ms(5);
  run.meta.s2_exec = ms(5);
  run.meta.s3_exec = ms(5);
  run.meta.s4_exec = ms(5);
  const OracleReport report = check_analysis_invariants(run, opts());
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_GT(report.checks, 0u);
}

}  // namespace
}  // namespace diog::testkit
