// RunFollower under file-identity attacks (ISSUE 4, satellite 2): a
// followed run file that is truncated below the consumed prefix or
// atomically replaced mid-follow must be detected — the follower either
// resyncs from a safe point or reports the discontinuity, and never
// serves stale or mixed bytes as if nothing happened.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "eventstore/live_writer.h"
#include "eventstore/run_format.h"
#include "eventstore/run_io.h"
#include "support/error.h"
#include "testkit/dgtrace_builder.h"

namespace diog::testkit {
namespace {

namespace fs = std::filesystem;

class FollowerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_follow_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/run.dgtrace";
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Header + two chunks (events 0..7, 8..19), no footer: an in-progress
  // file a writer could legitimately still be appending to.
  Bytes two_chunk_file() const {
    Bytes b = make_header();
    ChunkParams c1;
    c1.event_count = 8;
    append(b, make_chunk(c1));
    ChunkParams c2;
    c2.first_event_index = 8;
    c2.event_count = 12;
    append(b, make_chunk(c2));
    return b;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(FollowerTest, TruncationBelowConsumedPrefixIsDetected) {
  write_file(path_, two_chunk_file());
  evstore::RunFollower follower(path_);
  EXPECT_EQ(follower.poll(), 20u);

  // The writer's file is truncated to the middle of chunk 1 — below
  // everything the follower already consumed.
  fs::resize_file(path_, evstore::format::kHeaderBytes + 10);
  EXPECT_THROW((void)follower.poll(), Error);
}

TEST_F(FollowerTest, TruncationToZeroIsDetected) {
  write_file(path_, two_chunk_file());
  evstore::RunFollower follower(path_);
  EXPECT_EQ(follower.poll(), 20u);

  fs::resize_file(path_, 0);
  EXPECT_THROW((void)follower.poll(), Error);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(FollowerTest, AtomicReplacementIsDetected) {
  write_file(path_, two_chunk_file());
  evstore::RunFollower follower(path_);
  EXPECT_EQ(follower.poll(), 20u);

  // rename(2) over the followed path: the classic log-rotation move. The
  // replacement is even LARGER than the consumed prefix, so a size check
  // alone would miss it — the follower must notice the identity change.
  Bytes other = two_chunk_file();
  ChunkParams c3;
  c3.first_event_index = 20;
  c3.event_count = 30;
  append(other, make_chunk(c3));
  append(other, make_footer(/*final=*/true, 50, 3));
  const std::string tmp = dir_ + "/replacement.dgtrace";
  write_file(tmp, other);
  fs::rename(tmp, path_);

  EXPECT_THROW((void)follower.poll(), Error);
}

TEST_F(FollowerTest, ReplacementBeforeFirstConsumptionIsJustANewFile) {
  // If the follower never validated the original header, there is no
  // consumed prefix to betray: it simply follows whatever is there now.
  evstore::RunFollower follower(path_);
  EXPECT_EQ(follower.poll(), 0u);  // file does not exist yet

  const std::string tmp = dir_ + "/first.dgtrace";
  write_file(tmp, two_chunk_file());
  fs::rename(tmp, path_);
  EXPECT_EQ(follower.poll(), 20u);
}
#endif

TEST_F(FollowerTest, NormalGrowthAndFooterRewritesAreNotFlagged) {
  // The detection must not false-positive on the legitimate pattern:
  // the same file growing chunk by chunk, footer rewritten in place at
  // every checkpoint.
  evstore::TraceRun run;
  run.meta.workload = "follow_wl";
  evstore::LiveRunWriter::Options opts;
  opts.fsync_checkpoints = false;
  evstore::LiveRunWriter w(path_, opts);
  evstore::RunFollower follower(path_);

  std::uint64_t seen = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      evstore::Event e;
      e.kind = evstore::EventKind::kOp;
      e.op_index = static_cast<std::uint64_t>(round * 100 + i);
      run.store->append(e);
    }
    w.checkpoint(run, /*force=*/true);
    seen += follower.poll();
  }
  w.finish(run);
  seen += follower.poll();
  EXPECT_EQ(seen, 500u);
  EXPECT_TRUE(follower.finalized());
}

TEST_F(FollowerTest, TruncationAtExactConsumedOffsetIsBenign) {
  // Chopping the unconsumed torn tail off (what a cleanup pass might
  // do) leaves every consumed byte intact — not a discontinuity.
  Bytes b = two_chunk_file();
  const std::size_t complete = b.size();
  b.push_back('C');  // one stray byte of a future chunk
  write_file(path_, b);

  evstore::RunFollower follower(path_);
  EXPECT_EQ(follower.poll(), 20u);
  fs::resize_file(path_, complete);
  EXPECT_EQ(follower.poll(), 0u);  // nothing new, no error
}

}  // namespace
}  // namespace diog::testkit
