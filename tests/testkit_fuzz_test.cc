// The structure-aware fuzzer (ISSUE 4, leg 1) and the satellite-1
// regression corpus. The mini campaigns here run with second-scale
// budgets and fixed seeds: they are the tier-1 smoke that the fuzzing
// harness itself works end to end; CI's dedicated job runs the same
// targets for 60 s under ASan/UBSan.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "eventstore/run_format.h"
#include "eventstore/run_io.h"
#include "support/error.h"
#include "support/rng.h"
#include "testkit/dgtrace_builder.h"
#include "testkit/fuzz.h"

namespace diog::testkit {
namespace {

namespace fs = std::filesystem;

std::string data_file(const std::string& name) {
  return std::string(DIOG_TEST_DATA_DIR) + "/dgtrace/regression/" + name;
}

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("diog_fuzz_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  FuzzOptions mini(const std::string& target, std::uint64_t max_execs) {
    FuzzOptions o;
    o.target = target;
    o.seed = 1;
    o.budget_s = 20.0;  // generous wall cap; max_execs is the real bound
    o.max_execs = max_execs;
    o.corpus_dir = dir_;
    return o;
  }

  std::string dir_;
};

// --- the mutator -------------------------------------------------------------

TEST_F(FuzzTest, MutateIsDeterministicForAFixedSeed) {
  const Bytes base = make_minimal_run(8);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mutate(base, a, 4096), mutate(base, b, 4096)) << "step " << i;
  }
}

TEST_F(FuzzTest, MutateRespectsTheSizeCap) {
  Bytes base = make_minimal_run(8);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    base = mutate(base, rng, 512);
    ASSERT_LE(base.size(), 512u) << "step " << i;
  }
}

TEST_F(FuzzTest, MinimizeInputShrinksToTheEssentialByte) {
  Bytes input(300, 0);
  input[257] = 0xAB;
  const auto predicate = [](const Bytes& b) {
    for (const unsigned char c : b) {
      if (c == 0xAB) return true;
    }
    return false;
  };
  const Bytes min = minimize_input(input, predicate);
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(min[0], 0xAB);
}

// --- mini campaigns ----------------------------------------------------------

TEST_F(FuzzTest, RunIoCampaignFindsNoContractViolations) {
  const FuzzStats stats = run_fuzzer(mini("run-io", 3000));
  EXPECT_TRUE(stats.ok()) << stats.render();
  EXPECT_EQ(stats.execs, 3000u);
  // The mutator must actually reach the parser: some inputs load, some
  // get rejected, and more than one rejection message exists.
  EXPECT_GT(stats.clean_errors, 0u);
  EXPECT_GT(stats.clean_ok + stats.clean_prefix, 0u);
  EXPECT_GT(stats.error_classes, 3u);
}

TEST_F(FuzzTest, FollowerCampaignFindsNoContractViolations) {
  const FuzzStats stats = run_fuzzer(mini("follower", 800));
  EXPECT_TRUE(stats.ok()) << stats.render();
  EXPECT_EQ(stats.execs, 800u);
}

TEST_F(FuzzTest, RingCampaignFindsNoCounterViolations) {
  const FuzzStats stats = run_fuzzer(mini("ring", 40));
  EXPECT_TRUE(stats.ok()) << stats.render();
  EXPECT_EQ(stats.execs, 40u);
}

TEST_F(FuzzTest, CampaignIsDeterministicForAFixedSeed) {
  FuzzOptions o = mini("run-io", 500);
  o.corpus_dir = dir_ + "/a";
  const FuzzStats first = run_fuzzer(o);
  o.corpus_dir = dir_ + "/b";
  const FuzzStats second = run_fuzzer(o);
  EXPECT_EQ(first.clean_ok, second.clean_ok);
  EXPECT_EQ(first.clean_prefix, second.clean_prefix);
  EXPECT_EQ(first.clean_errors, second.clean_errors);
  EXPECT_EQ(first.error_classes, second.error_classes);
}

TEST_F(FuzzTest, UnknownTargetIsRejected) {
  FuzzOptions o;
  o.target = "nonsense";
  EXPECT_THROW((void)run_fuzzer(o), Error);
}

TEST_F(FuzzTest, CommittedCorpusSeedsAreUsed) {
  const std::string corpus =
      std::string(DIOG_TEST_DATA_DIR) + "/dgtrace/corpus";
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  FuzzOptions o = mini("run-io", 400);
  // Findings and artifacts would go to the corpus dir — run on a copy.
  for (const auto& ent : fs::directory_iterator(corpus)) {
    fs::copy_file(ent.path(), fs::path(dir_) / ent.path().filename());
  }
  const FuzzStats stats = run_fuzzer(o);
  EXPECT_EQ(stats.corpus_inputs, 7u);
  EXPECT_TRUE(stats.ok()) << stats.render();
}

// --- satellite 1: the committed regression inputs ----------------------------

TEST(DgtraceRegression, CleanFilesLoadCleanly) {
  evstore::RunFileInfo info;
  const evstore::TraceRun mini =
      evstore::open_run(data_file("mini_clean.dgtrace"),
                        evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_EQ(mini.store->size(), 4u);

  const evstore::TraceRun multi =
      evstore::open_run(data_file("mini_multichunk.dgtrace"),
                        evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_EQ(info.chunks, 2u);
  EXPECT_EQ(multi.store->size(), 20u);
}

TEST(DgtraceRegression, TornTailLoadsAsPrefix) {
  evstore::RunFileInfo info;
  const evstore::TraceRun run =
      evstore::open_run(data_file("torn_tail.dgtrace"),
                        evstore::ReadMode::kAuto, &info);
  EXPECT_FALSE(info.clean);
  EXPECT_FALSE(info.finalized);
  EXPECT_EQ(info.chunks, 1u);
  EXPECT_EQ(run.store->size(), 6u);
}

TEST(DgtraceRegression, ZeroLengthChunkIsCorrupt) {
  // Satellite 1: a complete zero-payload chunk is hard corruption — the
  // writer can never emit one — and must not parse as an empty record.
  EXPECT_THROW((void)evstore::open_run(data_file("zero_len_chunk.dgtrace")),
               Error);
}

TEST(DgtraceRegression, UndersizedChunkIsCorrupt) {
  EXPECT_THROW((void)evstore::open_run(data_file("undersized_chunk.dgtrace")),
               Error);
}

TEST(DgtraceRegression, OverlappingChunksAreCorrupt) {
  // Satellite 1: an event range that rewinds into the previous chunk's
  // is self-overlapping data, distinct from a legitimate ring gap.
  EXPECT_THROW((void)evstore::open_run(data_file("overlap_chunks.dgtrace")),
               Error);
}

TEST(DgtraceRegression, ChecksumMismatchIsCorrupt) {
  EXPECT_THROW((void)evstore::open_run(data_file("bad_checksum.dgtrace")),
               Error);
}

TEST(DgtraceRegression, LyingFooterIsCorrupt) {
  EXPECT_THROW((void)evstore::open_run(data_file("footer_mismatch.dgtrace")),
               Error);
}

TEST(DgtraceRegression, TruncatedHeaderIsCorrupt) {
  EXPECT_THROW((void)evstore::open_run(data_file("truncated_header.dgtrace")),
               Error);
}

// --- v3 coded chunks and v2 compatibility ------------------------------------

TEST(DgtraceRegression, V2FileOpensUnderTheV3Reader) {
  evstore::RunFileInfo info;
  const evstore::TraceRun run =
      evstore::open_run(data_file("v2_multichunk.dgtrace"),
                        evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_EQ(info.format_version, 2u);
  EXPECT_EQ(run.store->size(), 20u);
  // v2 columns are stored raw, so the compression accounting is 1:1.
  EXPECT_DOUBLE_EQ(info.compression_ratio(), 1.0);
}

TEST(DgtraceRegression, V2FileRoundTripsThroughAV3Save) {
  const auto dir = fs::temp_directory_path() / "diog_v2_roundtrip";
  fs::create_directories(dir);
  const std::string resaved = (dir / "resaved.dgtrace").string();

  evstore::RunFileInfo before;
  const evstore::TraceRun run = evstore::open_run(
      data_file("v2_multichunk.dgtrace"), evstore::ReadMode::kAuto, &before);
  evstore::SaveOptions sv;
  sv.footer_wall_ms = 0;
  evstore::save_run(resaved, run, sv);

  evstore::RunFileInfo after;
  const evstore::TraceRun again =
      evstore::open_run(resaved, evstore::ReadMode::kAuto, &after);
  EXPECT_EQ(after.format_version, 3u);
  ASSERT_EQ(again.store->size(), run.store->size());
  for (std::uint64_t i = 0; i < run.store->size(); ++i) {
    const evstore::Event a = run.store->event(i);
    const evstore::Event b = again.store->event(i);
    ASSERT_EQ(a.kind, b.kind) << "row " << i;
    ASSERT_EQ(a.op_index, b.op_index) << "row " << i;
    ASSERT_EQ(a.t_start, b.t_start) << "row " << i;
    ASSERT_EQ(a.t_end, b.t_end) << "row " << i;
  }
  fs::remove_all(dir);
}

TEST(DgtraceRegression, CodedChunksLoadCleanly) {
  evstore::RunFileInfo info;
  const evstore::TraceRun run =
      evstore::open_run(data_file("v3_coded_clean.dgtrace"),
                        evstore::ReadMode::kAuto, &info);
  EXPECT_TRUE(info.clean);
  EXPECT_TRUE(info.finalized);
  EXPECT_EQ(info.format_version, 3u);
  ASSERT_EQ(run.store->size(), 300u);
  // The builder's independent codec implementation must decode to the
  // values it encoded: ascending t_start (delta), cycling kinds.
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_EQ(run.store->col_t_start().get(i),
              static_cast<std::int64_t>(8000 + 7 * i))
        << "row " << i;
    ASSERT_EQ(run.store->col_kind().get(i), i % 3) << "row " << i;
  }
  // Delta/varint columns genuinely compressed: stored < raw.
  ASSERT_EQ(info.chunk_stats.size(), 1u);
  EXPECT_GT(info.compression_ratio(), 2.0);
}

TEST(DgtraceRegression, UnknownChunkEncodingIsCorrupt) {
  try {
    (void)evstore::open_run(data_file("bad_chunk_encoding.dgtrace"));
    FAIL() << "unknown chunk encoding byte did not classify";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk encoding"),
              std::string::npos)
        << e.what();
  }
}

TEST(DgtraceRegression, UnknownColumnCodecIsCorrupt) {
  try {
    (void)evstore::open_run(data_file("bad_column_codec.dgtrace"));
    FAIL() << "unknown column codec did not classify";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("codec"), std::string::npos)
        << e.what();
  }
}

TEST(DgtraceRegression, TruncatedBitpackedDeltaIsCorrupt) {
  EXPECT_THROW((void)evstore::open_run(data_file("truncated_bitpack.dgtrace")),
               Error);
}

TEST(DgtraceRegression, VarintOverrunIsCorrupt) {
  try {
    (void)evstore::open_run(data_file("varint_overrun.dgtrace"));
    FAIL() << "varint overrun did not classify";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("varint"), std::string::npos)
        << e.what();
  }
}

TEST(DgtraceRegression, BothReadModesAgreeOnEveryRegressionInput) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "mmap unavailable";
#endif
  const char* names[] = {
      "mini_clean.dgtrace",     "mini_multichunk.dgtrace",
      "torn_tail.dgtrace",      "zero_len_chunk.dgtrace",
      "undersized_chunk.dgtrace", "overlap_chunks.dgtrace",
      "bad_checksum.dgtrace",   "footer_mismatch.dgtrace",
      "truncated_header.dgtrace", "hub_torn_mid_chunk.dgtrace",
      "hub_torn_between_chunks.dgtrace", "hub_torn_mid_footer.dgtrace",
      "v2_multichunk.dgtrace",  "v3_coded_clean.dgtrace",
      "bad_chunk_encoding.dgtrace", "bad_column_codec.dgtrace",
      "truncated_bitpack.dgtrace", "varint_overrun.dgtrace"};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    std::string stream_err;
    std::string mmap_err;
    std::uint64_t stream_events = 0;
    std::uint64_t mmap_events = 0;
    try {
      stream_events = evstore::open_run(data_file(name),
                                        evstore::ReadMode::kStream)
                          .store->size();
    } catch (const Error& e) {
      stream_err = e.what();
    }
    try {
      mmap_events =
          evstore::open_run(data_file(name), evstore::ReadMode::kMmap)
              .store->size();
    } catch (const Error& e) {
      mmap_err = e.what();
    }
    EXPECT_EQ(stream_err.empty(), mmap_err.empty());
    EXPECT_EQ(stream_events, mmap_events);
  }
}

}  // namespace
}  // namespace diog::testkit
